// Package simnet implements transport.Endpoint over a discrete-event
// simulated RDMA fabric, standing in for the paper's 56 Gbps InfiniBand
// cluster (§V). Every operation charges serialization and propagation time
// to the calling simulation process; per-ordered-pair links serialize
// transfers, reproducing the reliable-connected queue pair's in-order,
// at-most-once delivery contract (§IV.G).
//
// The fabric supports failure injection — network partitions and node
// detachment — which the fault-tolerance experiments use.
package simnet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"godm/internal/des"
	"godm/internal/transport"
)

// Params describes the interconnect.
type Params struct {
	// Latency is the one-way propagation latency per message.
	Latency time.Duration
	// Bandwidth is link bandwidth in bytes per second.
	Bandwidth float64
	// PerMessage is the fixed verb-processing overhead added to every
	// operation (doorbell ring, completion handling).
	PerMessage time.Duration
}

// DefaultParams models 56 Gbps FDR InfiniBand: ~1.5 µs one-way propagation,
// 7 GB/s payload bandwidth, 1.5 µs verb overhead — a ~3 µs 4 KB read, the
// figure the RDMA literature (and the paper's disk-network gap argument)
// assumes.
func DefaultParams() Params {
	return Params{
		Latency:    1500 * time.Nanosecond,
		Bandwidth:  7e9,
		PerMessage: 1500 * time.Nanosecond,
	}
}

type pair struct{ from, to transport.NodeID }

// Fabric is a simulated interconnect. Create endpoints with Attach.
type Fabric struct {
	env    *des.Env
	params Params

	mu          sync.Mutex
	endpoints   map[transport.NodeID]*Endpoint
	links       map[pair]*des.Link
	partitioned map[pair]bool
}

// New returns a fabric bound to the simulation environment.
func New(env *des.Env, params Params) *Fabric {
	if params.Bandwidth <= 0 {
		panic("simnet: bandwidth must be positive")
	}
	return &Fabric{
		env:         env,
		params:      params,
		endpoints:   map[transport.NodeID]*Endpoint{},
		links:       map[pair]*des.Link{},
		partitioned: map[pair]bool{},
	}
}

// Attach creates the endpoint for node id.
func (f *Fabric) Attach(id transport.NodeID) (*Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.endpoints[id]; ok {
		return nil, fmt.Errorf("simnet: node %d already attached", id)
	}
	ep := &Endpoint{fabric: f, id: id, regions: map[transport.RegionID][]byte{}}
	f.endpoints[id] = ep
	return ep, nil
}

// Partition cuts connectivity between a and b in both directions.
func (f *Fabric) Partition(a, b transport.NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partitioned[pair{a, b}] = true
	f.partitioned[pair{b, a}] = true
}

// Heal restores connectivity between a and b.
func (f *Fabric) Heal(a, b transport.NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.partitioned, pair{a, b})
	delete(f.partitioned, pair{b, a})
}

// link returns the (lazily created) directed link from a to b.
func (f *Fabric) link(a, b transport.NodeID) *des.Link {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := pair{a, b}
	l, ok := f.links[key]
	if !ok {
		name := fmt.Sprintf("link.%d-%d", a, b)
		l = des.NewLink(f.env, name, f.params.Latency, f.params.Bandwidth)
		f.links[key] = l
	}
	return l
}

// target resolves the destination endpoint, enforcing liveness and
// partitions.
func (f *Fabric) target(from, to transport.NodeID) (*Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.partitioned[pair{from, to}] {
		return nil, fmt.Errorf("%w: %d->%d partitioned", transport.ErrUnreachable, from, to)
	}
	ep, ok := f.endpoints[to]
	if !ok || ep.closed {
		return nil, fmt.Errorf("%w: node %d", transport.ErrUnreachable, to)
	}
	return ep, nil
}

// Endpoint is one node's attachment to the simulated fabric.
type Endpoint struct {
	fabric *Fabric
	id     transport.NodeID

	mu      sync.Mutex
	regions map[transport.RegionID][]byte
	handler transport.Handler
	closed  bool
}

var _ transport.Endpoint = (*Endpoint)(nil)

// ID implements transport.Endpoint.
func (e *Endpoint) ID() transport.NodeID { return e.id }

// RegisterRegion implements transport.Endpoint.
func (e *Endpoint) RegisterRegion(id transport.RegionID, size int) ([]byte, error) {
	if size <= 0 {
		return nil, fmt.Errorf("simnet: region size %d must be positive", size)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, transport.ErrClosed
	}
	if _, ok := e.regions[id]; ok {
		return nil, fmt.Errorf("simnet: region %d already registered on node %d", id, e.id)
	}
	buf := make([]byte, size)
	e.regions[id] = buf
	return buf, nil
}

// DeregisterRegion implements transport.Endpoint.
func (e *Endpoint) DeregisterRegion(id transport.RegionID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.regions[id]; !ok {
		return fmt.Errorf("%w: region %d on node %d", transport.ErrNoRegion, id, e.id)
	}
	delete(e.regions, id)
	return nil
}

// SetHandler implements transport.Endpoint.
func (e *Endpoint) SetHandler(h transport.Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
}

// Close implements transport.Endpoint.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	return nil
}

// proc extracts the mandatory simulation process from ctx.
func proc(ctx context.Context) *des.Proc {
	p, ok := des.FromContext(ctx)
	if !ok {
		panic("simnet: context does not carry a des.Proc; use des.NewContext")
	}
	return p
}

func (e *Endpoint) checkOpen() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return transport.ErrClosed
	}
	return nil
}

// WriteRegion implements transport.Verbs (one-sided RDMA write).
func (e *Endpoint) WriteRegion(ctx context.Context, to transport.NodeID, region transport.RegionID, offset int64, data []byte) error {
	p := proc(ctx)
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(data) > transport.MaxFrameSize {
		return fmt.Errorf("%w: payload %d exceeds %d", transport.ErrFrameTooLarge, len(data), transport.MaxFrameSize)
	}
	if err := e.checkOpen(); err != nil {
		return err
	}
	p.Sleep(e.fabric.params.PerMessage)
	e.fabric.link(e.id, to).Transfer(p, int64(len(data)))
	dst, err := e.fabric.target(e.id, to)
	if err != nil {
		return err
	}
	return dst.applyWrite(region, offset, data)
}

// WriteRegionV implements transport.VectoredWriter: the slices of bufs land
// contiguously at offset as one transfer, charged for their total size —
// the simulated twin of the TCP fabric's writev path.
func (e *Endpoint) WriteRegionV(ctx context.Context, to transport.NodeID, region transport.RegionID, offset int64, bufs [][]byte) error {
	p := proc(ctx)
	if err := ctx.Err(); err != nil {
		return err
	}
	var total int64
	for _, b := range bufs {
		total += int64(len(b))
	}
	if total > transport.MaxFrameSize {
		return fmt.Errorf("%w: payload %d exceeds %d", transport.ErrFrameTooLarge, total, transport.MaxFrameSize)
	}
	if err := e.checkOpen(); err != nil {
		return err
	}
	p.Sleep(e.fabric.params.PerMessage)
	e.fabric.link(e.id, to).Transfer(p, total)
	dst, err := e.fabric.target(e.id, to)
	if err != nil {
		return err
	}
	return dst.applyWriteV(region, offset, total, bufs)
}

func (e *Endpoint) applyWriteV(region transport.RegionID, offset int64, total int64, bufs [][]byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	buf, ok := e.regions[region]
	if !ok {
		return fmt.Errorf("%w: region %d on node %d", transport.ErrNoRegion, region, e.id)
	}
	if offset < 0 || offset+total > int64(len(buf)) {
		return fmt.Errorf("%w: [%d,%d) in region of %d bytes",
			transport.ErrOutOfBounds, offset, offset+total, len(buf))
	}
	at := offset
	for _, b := range bufs {
		at += int64(copy(buf[at:], b))
	}
	return nil
}

func (e *Endpoint) applyWrite(region transport.RegionID, offset int64, data []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	buf, ok := e.regions[region]
	if !ok {
		return fmt.Errorf("%w: region %d on node %d", transport.ErrNoRegion, region, e.id)
	}
	if offset < 0 || offset+int64(len(data)) > int64(len(buf)) {
		return fmt.Errorf("%w: [%d,%d) in region of %d bytes",
			transport.ErrOutOfBounds, offset, offset+int64(len(data)), len(buf))
	}
	copy(buf[offset:], data)
	return nil
}

// ReadRegion implements transport.Verbs (one-sided RDMA read).
func (e *Endpoint) ReadRegion(ctx context.Context, to transport.NodeID, region transport.RegionID, offset int64, n int) ([]byte, error) {
	p := proc(ctx)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if n > transport.MaxFrameSize {
		return nil, fmt.Errorf("%w: read of %d exceeds %d", transport.ErrFrameTooLarge, n, transport.MaxFrameSize)
	}
	if err := e.checkOpen(); err != nil {
		return nil, err
	}
	p.Sleep(e.fabric.params.PerMessage)
	// Request message is tiny; response carries the payload.
	e.fabric.link(e.id, to).Transfer(p, 64)
	dst, err := e.fabric.target(e.id, to)
	if err != nil {
		return nil, err
	}
	data, err := dst.applyRead(region, offset, n)
	if err != nil {
		return nil, err
	}
	e.fabric.link(to, e.id).Transfer(p, int64(n))
	return data, nil
}

// ReadRegionInto implements transport.ScatterReader: the response payload
// lands directly in dst with no intermediate allocation, the simulated twin
// of scattering a READ completion into caller-registered memory.
func (e *Endpoint) ReadRegionInto(ctx context.Context, to transport.NodeID, region transport.RegionID, offset int64, dst []byte) error {
	p := proc(ctx)
	if err := ctx.Err(); err != nil {
		return err
	}
	n := len(dst)
	if n > transport.MaxFrameSize {
		return fmt.Errorf("%w: read of %d exceeds %d", transport.ErrFrameTooLarge, n, transport.MaxFrameSize)
	}
	if err := e.checkOpen(); err != nil {
		return err
	}
	p.Sleep(e.fabric.params.PerMessage)
	// Request message is tiny; response carries the payload.
	e.fabric.link(e.id, to).Transfer(p, 64)
	src, err := e.fabric.target(e.id, to)
	if err != nil {
		return err
	}
	if err := src.applyReadInto(region, offset, dst); err != nil {
		return err
	}
	e.fabric.link(to, e.id).Transfer(p, int64(n))
	return nil
}

func (e *Endpoint) applyReadInto(region transport.RegionID, offset int64, dst []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	buf, ok := e.regions[region]
	if !ok {
		return fmt.Errorf("%w: region %d on node %d", transport.ErrNoRegion, region, e.id)
	}
	n := len(dst)
	if offset < 0 || offset+int64(n) > int64(len(buf)) {
		return fmt.Errorf("%w: [%d,%d) in region of %d bytes",
			transport.ErrOutOfBounds, offset, offset+int64(n), len(buf))
	}
	copy(dst, buf[offset:])
	return nil
}

func (e *Endpoint) applyRead(region transport.RegionID, offset int64, n int) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	buf, ok := e.regions[region]
	if !ok {
		return nil, fmt.Errorf("%w: region %d on node %d", transport.ErrNoRegion, region, e.id)
	}
	if offset < 0 || n < 0 || offset+int64(n) > int64(len(buf)) {
		return nil, fmt.Errorf("%w: [%d,%d) in region of %d bytes",
			transport.ErrOutOfBounds, offset, offset+int64(n), len(buf))
	}
	out := make([]byte, n)
	copy(out, buf[offset:])
	return out, nil
}

// Call implements transport.Verbs (two-sided send/receive RPC).
func (e *Endpoint) Call(ctx context.Context, to transport.NodeID, payload []byte) ([]byte, error) {
	p := proc(ctx)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(payload) > transport.MaxFrameSize {
		return nil, fmt.Errorf("%w: payload %d exceeds %d", transport.ErrFrameTooLarge, len(payload), transport.MaxFrameSize)
	}
	if err := e.checkOpen(); err != nil {
		return nil, err
	}
	p.Sleep(e.fabric.params.PerMessage)
	e.fabric.link(e.id, to).Transfer(p, int64(len(payload)))
	dst, err := e.fabric.target(e.id, to)
	if err != nil {
		return nil, err
	}
	dst.mu.Lock()
	h := dst.handler
	dst.mu.Unlock()
	if h == nil {
		return nil, fmt.Errorf("%w: node %d", transport.ErrNoHandler, to)
	}
	// The handler runs on the remote CPU; its simulated cost is charged to
	// the calling process, which is blocked for the round trip anyway. The
	// caller's context rides along, carrying the des.Proc and trace state.
	resp, err := h(ctx, e.id, payload)
	if err != nil {
		return nil, err
	}
	e.fabric.link(to, e.id).Transfer(p, int64(len(resp)))
	return resp, nil
}
