package simnet

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"godm/internal/des"
	"godm/internal/transport"
)

// runSim executes body as a single simulation process and fails on sim error.
func runSim(t *testing.T, env *des.Env, body func(ctx context.Context, p *des.Proc)) {
	t.Helper()
	env.Go("test", func(p *des.Proc) {
		body(des.NewContext(context.Background(), p), p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func twoNodes(t *testing.T) (*des.Env, *Endpoint, *Endpoint, *Fabric) {
	t.Helper()
	env := des.NewEnv()
	f := New(env, DefaultParams())
	a, err := f.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	return env, a, b, f
}

func TestAttachDuplicate(t *testing.T) {
	env := des.NewEnv()
	f := New(env, DefaultParams())
	if _, err := f.Attach(1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Attach(1); err == nil {
		t.Fatal("expected error for duplicate attach")
	}
}

func TestOneSidedWriteRead(t *testing.T) {
	env, a, b, _ := twoNodes(t)
	if _, err := b.RegisterRegion(10, 8192); err != nil {
		t.Fatal(err)
	}
	runSim(t, env, func(ctx context.Context, p *des.Proc) {
		data := bytes.Repeat([]byte{0xCD}, 4096)
		if err := a.WriteRegion(ctx, 2, 10, 4096, data); err != nil {
			t.Errorf("WriteRegion: %v", err)
			return
		}
		got, err := a.ReadRegion(ctx, 2, 10, 4096, 4096)
		if err != nil {
			t.Errorf("ReadRegion: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("read data mismatch")
		}
	})
}

func TestWriteIsOneSided(t *testing.T) {
	// A write must land without any handler installed on the target.
	env, a, b, _ := twoNodes(t)
	buf, err := b.RegisterRegion(1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	runSim(t, env, func(ctx context.Context, p *des.Proc) {
		if err := a.WriteRegion(ctx, 2, 1, 0, []byte("direct")); err != nil {
			t.Errorf("WriteRegion: %v", err)
		}
	})
	if !bytes.Equal(buf[:6], []byte("direct")) {
		t.Fatalf("region = %q, want direct placement", buf[:6])
	}
}

func TestWriteChargesRDMALatency(t *testing.T) {
	env, a, b, _ := twoNodes(t)
	if _, err := b.RegisterRegion(1, 4096); err != nil {
		t.Fatal(err)
	}
	var elapsed time.Duration
	runSim(t, env, func(ctx context.Context, p *des.Proc) {
		start := p.Now()
		if err := a.WriteRegion(ctx, 2, 1, 0, make([]byte, 4096)); err != nil {
			t.Errorf("WriteRegion: %v", err)
		}
		elapsed = p.Now() - start
	})
	// 4 KB at 7 GB/s (~585ns) + 1.5µs latency + 1.5µs overhead: ~3.6µs.
	if elapsed < 2*time.Microsecond || elapsed > 10*time.Microsecond {
		t.Fatalf("4KB RDMA write = %v, want ~3-4µs", elapsed)
	}
}

func TestReadChargesResponseTransfer(t *testing.T) {
	env, a, b, _ := twoNodes(t)
	if _, err := b.RegisterRegion(1, 1<<20); err != nil {
		t.Fatal(err)
	}
	var small, large time.Duration
	runSim(t, env, func(ctx context.Context, p *des.Proc) {
		start := p.Now()
		if _, err := a.ReadRegion(ctx, 2, 1, 0, 64); err != nil {
			t.Errorf("small read: %v", err)
		}
		small = p.Now() - start
		start = p.Now()
		if _, err := a.ReadRegion(ctx, 2, 1, 0, 1<<20); err != nil {
			t.Errorf("large read: %v", err)
		}
		large = p.Now() - start
	})
	if large <= small*2 {
		t.Fatalf("1MB read %v not much slower than 64B read %v", large, small)
	}
}

func TestWriteUnregisteredRegion(t *testing.T) {
	env, a, _, _ := twoNodes(t)
	runSim(t, env, func(ctx context.Context, p *des.Proc) {
		err := a.WriteRegion(ctx, 2, 99, 0, []byte("x"))
		if !errors.Is(err, transport.ErrNoRegion) {
			t.Errorf("err = %v, want ErrNoRegion", err)
		}
	})
}

func TestWriteOutOfBounds(t *testing.T) {
	env, a, b, _ := twoNodes(t)
	if _, err := b.RegisterRegion(1, 100); err != nil {
		t.Fatal(err)
	}
	runSim(t, env, func(ctx context.Context, p *des.Proc) {
		err := a.WriteRegion(ctx, 2, 1, 90, make([]byte, 20))
		if !errors.Is(err, transport.ErrOutOfBounds) {
			t.Errorf("err = %v, want ErrOutOfBounds", err)
		}
		if _, err := a.ReadRegion(ctx, 2, 1, -1, 4); !errors.Is(err, transport.ErrOutOfBounds) {
			t.Errorf("negative offset err = %v, want ErrOutOfBounds", err)
		}
	})
}

func TestCallRoundTrip(t *testing.T) {
	env, a, b, _ := twoNodes(t)
	b.SetHandler(func(_ context.Context, from transport.NodeID, payload []byte) ([]byte, error) {
		if from != 1 {
			t.Errorf("from = %d, want 1", from)
		}
		return append([]byte("echo:"), payload...), nil
	})
	runSim(t, env, func(ctx context.Context, p *des.Proc) {
		resp, err := a.Call(ctx, 2, []byte("ping"))
		if err != nil {
			t.Errorf("Call: %v", err)
			return
		}
		if string(resp) != "echo:ping" {
			t.Errorf("resp = %q", resp)
		}
	})
}

func TestCallNoHandler(t *testing.T) {
	env, a, _, _ := twoNodes(t)
	runSim(t, env, func(ctx context.Context, p *des.Proc) {
		if _, err := a.Call(ctx, 2, []byte("x")); !errors.Is(err, transport.ErrNoHandler) {
			t.Errorf("err = %v, want ErrNoHandler", err)
		}
	})
}

func TestCallHandlerError(t *testing.T) {
	env, a, b, _ := twoNodes(t)
	wantErr := errors.New("backend failure")
	b.SetHandler(func(context.Context, transport.NodeID, []byte) ([]byte, error) { return nil, wantErr })
	runSim(t, env, func(ctx context.Context, p *des.Proc) {
		if _, err := a.Call(ctx, 2, nil); !errors.Is(err, wantErr) {
			t.Errorf("err = %v, want handler error", err)
		}
	})
}

func TestPartitionAndHeal(t *testing.T) {
	env, a, b, f := twoNodes(t)
	if _, err := b.RegisterRegion(1, 4096); err != nil {
		t.Fatal(err)
	}
	f.Partition(1, 2)
	runSim(t, env, func(ctx context.Context, p *des.Proc) {
		if err := a.WriteRegion(ctx, 2, 1, 0, []byte("x")); !errors.Is(err, transport.ErrUnreachable) {
			t.Errorf("partitioned write err = %v, want ErrUnreachable", err)
		}
		f.Heal(1, 2)
		if err := a.WriteRegion(ctx, 2, 1, 0, []byte("x")); err != nil {
			t.Errorf("healed write err = %v", err)
		}
	})
}

func TestClosedTargetUnreachable(t *testing.T) {
	env, a, b, _ := twoNodes(t)
	if _, err := b.RegisterRegion(1, 4096); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	runSim(t, env, func(ctx context.Context, p *des.Proc) {
		if err := a.WriteRegion(ctx, 2, 1, 0, []byte("x")); !errors.Is(err, transport.ErrUnreachable) {
			t.Errorf("err = %v, want ErrUnreachable", err)
		}
	})
}

func TestClosedSourceRejected(t *testing.T) {
	env, a, b, _ := twoNodes(t)
	if _, err := b.RegisterRegion(1, 4096); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	runSim(t, env, func(ctx context.Context, p *des.Proc) {
		if err := a.WriteRegion(ctx, 2, 1, 0, []byte("x")); !errors.Is(err, transport.ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	})
}

func TestDeregisterRegionBreaksAccess(t *testing.T) {
	env, a, b, _ := twoNodes(t)
	if _, err := b.RegisterRegion(1, 4096); err != nil {
		t.Fatal(err)
	}
	if err := b.DeregisterRegion(1); err != nil {
		t.Fatal(err)
	}
	if err := b.DeregisterRegion(1); !errors.Is(err, transport.ErrNoRegion) {
		t.Fatalf("double deregister err = %v, want ErrNoRegion", err)
	}
	runSim(t, env, func(ctx context.Context, p *des.Proc) {
		if _, err := a.ReadRegion(ctx, 2, 1, 0, 1); !errors.Is(err, transport.ErrNoRegion) {
			t.Errorf("err = %v, want ErrNoRegion", err)
		}
	})
}

func TestRegisterRegionValidation(t *testing.T) {
	_, _, b, _ := twoNodes(t)
	if _, err := b.RegisterRegion(1, 0); err == nil {
		t.Fatal("expected error for zero-size region")
	}
	if _, err := b.RegisterRegion(1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RegisterRegion(1, 10); err == nil {
		t.Fatal("expected error for duplicate region")
	}
}

func TestTransfersSerializeInOrder(t *testing.T) {
	// Two writes from the same source serialize on the directed link (RC QP
	// in-order delivery): the second lands strictly after the first.
	env, a, b, _ := twoNodes(t)
	buf, err := b.RegisterRegion(1, 8192)
	if err != nil {
		t.Fatal(err)
	}
	var finishes []time.Duration
	for i := 0; i < 2; i++ {
		i := i
		env.Go("writer", func(p *des.Proc) {
			ctx := des.NewContext(context.Background(), p)
			payload := bytes.Repeat([]byte{byte(i + 1)}, 4096)
			if err := a.WriteRegion(ctx, 2, 1, int64(i)*4096, payload); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
			finishes = append(finishes, p.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(finishes) != 2 || finishes[0] >= finishes[1] {
		t.Fatalf("finishes = %v, want strictly ordered", finishes)
	}
	if buf[0] != 1 || buf[4096] != 2 {
		t.Fatalf("buf starts = %v, %v", buf[0], buf[4096])
	}
}

func TestMissingProcPanics(t *testing.T) {
	_, a, _, _ := twoNodes(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without des.Proc in context")
		}
	}()
	_ = a.WriteRegion(context.Background(), 2, 1, 0, nil)
}
