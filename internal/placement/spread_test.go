package placement

import "testing"

func groupedCandidates() []Candidate {
	// Three racks of two nodes each, equal capacity.
	return []Candidate{
		{Node: 1, FreeBytes: 1 << 20, Group: 1},
		{Node: 2, FreeBytes: 1 << 20, Group: 1},
		{Node: 3, FreeBytes: 1 << 20, Group: 2},
		{Node: 4, FreeBytes: 1 << 20, Group: 2},
		{Node: 5, FreeBytes: 1 << 20, Group: 3},
		{Node: 6, FreeBytes: 1 << 20, Group: 3},
	}
}

func domainOf(node NodeID, cands []Candidate) int {
	for _, c := range cands {
		if c.Node == node {
			return c.Group
		}
	}
	return -1
}

// TestSpreadDomainsDistinct: as long as enough domains exist, no two picks
// share one.
func TestSpreadDomainsDistinct(t *testing.T) {
	cands := groupedCandidates()
	for seed := int64(0); seed < 20; seed++ {
		b := SpreadDomains(NewRandom(seed))
		picked, err := b.Pick(cands, 3)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for _, n := range picked {
			g := domainOf(n, cands)
			if seen[g] {
				t.Fatalf("seed %d: picks %v land two shards on domain %d", seed, picked, g)
			}
			seen[g] = true
		}
	}
}

// TestSpreadDomainsBestEffort: more picks than domains still succeeds,
// reusing domains only once each is already covered, and never reusing a
// node.
func TestSpreadDomainsBestEffort(t *testing.T) {
	cands := groupedCandidates()
	b := SpreadDomains(NewRandom(7))
	picked, err := b.Pick(cands, 5)
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[NodeID]bool{}
	domains := map[int]int{}
	for _, n := range picked {
		if nodes[n] {
			t.Fatalf("picks %v repeat node %d", picked, n)
		}
		nodes[n] = true
		domains[domainOf(n, cands)]++
	}
	// 5 picks over 3 domains: every domain used before any is reused.
	if len(domains) != 3 {
		t.Fatalf("picks %v cover %d domains, want all 3", picked, len(domains))
	}
	for g, c := range domains {
		if c > 2 {
			t.Fatalf("domain %d hosts %d shards before others filled", g, c)
		}
	}
}

// TestSpreadDomainsUntagged: Group 0 candidates impose no constraint — the
// decorator degrades to the inner balancer's behavior.
func TestSpreadDomainsUntagged(t *testing.T) {
	cands := []Candidate{
		{Node: 1, FreeBytes: 1}, {Node: 2, FreeBytes: 1},
		{Node: 3, FreeBytes: 1}, {Node: 4, FreeBytes: 1},
	}
	b := SpreadDomains(NewRoundRobin())
	picked, err := b.Pick(cands, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[NodeID]bool{}
	for _, n := range picked {
		if seen[n] {
			t.Fatalf("picks %v repeat node %d", picked, n)
		}
		seen[n] = true
	}
}

// TestSpreadDomainsInsufficient: asking for more nodes than exist still
// fails loudly.
func TestSpreadDomainsInsufficient(t *testing.T) {
	b := SpreadDomains(NewRandom(1))
	if _, err := b.Pick(groupedCandidates(), 7); err == nil {
		t.Fatal("7 picks from 6 candidates succeeded")
	}
}

func TestSpreadDomainsName(t *testing.T) {
	if got := SpreadDomains(NewRoundRobin()).Name(); got != "round-robin+spread" {
		t.Fatalf("Name() = %q", got)
	}
}
