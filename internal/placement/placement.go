// Package placement implements the memory-balancing node selectors from
// §IV.E of the paper: when a node must park a data entry remotely, the node
// manager picks one primary and, for fault tolerance, additional replica
// nodes from the candidates its group leader advertises. The paper names
// four algorithms for minimizing memory imbalance across the cluster:
// random, round robin, weighted round robin, and the power of two choices.
package placement

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// NodeID names a node; it matches pagetable.NodeID numerically but is kept
// local to avoid a dependency cycle.
type NodeID int

// Candidate describes one remote node offering disaggregated memory.
type Candidate struct {
	Node NodeID
	// FreeBytes is the node's advertised free receive-pool capacity.
	FreeBytes int64
	// Latency is the observed round-trip figure to the node (for example
	// the digest plane's per-node get p99). Zero means unknown; only the
	// load-aware balancer consults it.
	Latency time.Duration
	// Group tags the node's failure domain (rack, chassis, power feed).
	// Zero means untagged; only the SpreadDomains decorator consults it.
	Group int
}

// ErrInsufficientCandidates is returned when fewer distinct candidates exist
// than the number of copies requested.
var ErrInsufficientCandidates = errors.New("placement: not enough candidate nodes")

// Balancer selects n distinct nodes from candidates to host an entry (the
// first is the primary). Implementations must be safe for concurrent use.
type Balancer interface {
	// Pick returns n distinct node IDs drawn from candidates.
	Pick(candidates []Candidate, n int) ([]NodeID, error)
	// Name identifies the policy in experiment output.
	Name() string
}

func validate(candidates []Candidate, n int) error {
	if n <= 0 {
		return fmt.Errorf("placement: n = %d must be positive", n)
	}
	if len(candidates) < n {
		return fmt.Errorf("%w: need %d, have %d", ErrInsufficientCandidates, n, len(candidates))
	}
	return nil
}

// positive filters out candidates advertising no free capacity. The
// load-sensitive balancers never return a full node: parking an entry there
// is guaranteed to fail, so an all-full cluster must surface
// ErrInsufficientCandidates instead of a doomed pick.
func positive(candidates []Candidate) []Candidate {
	out := make([]Candidate, 0, len(candidates))
	for _, c := range candidates {
		if c.FreeBytes > 0 {
			out = append(out, c)
		}
	}
	return out
}

// Random picks uniformly at random without replacement.
type Random struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandom returns a seeded random balancer.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Balancer.
func (r *Random) Name() string { return "random" }

// Pick implements Balancer.
func (r *Random) Pick(candidates []Candidate, n int) ([]NodeID, error) {
	if err := validate(candidates, n); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := r.rng.Perm(len(candidates))[:n]
	out := make([]NodeID, n)
	for i, j := range idx {
		out[i] = candidates[j].Node
	}
	return out, nil
}

// RoundRobin cycles through candidates in node-ID order regardless of load.
type RoundRobin struct {
	mu   sync.Mutex
	next int
}

// NewRoundRobin returns a round-robin balancer.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Balancer.
func (rr *RoundRobin) Name() string { return "round-robin" }

// Pick implements Balancer.
func (rr *RoundRobin) Pick(candidates []Candidate, n int) ([]NodeID, error) {
	if err := validate(candidates, n); err != nil {
		return nil, err
	}
	sorted := append([]Candidate(nil), candidates...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })
	rr.mu.Lock()
	start := rr.next
	rr.next += n
	rr.mu.Unlock()
	out := make([]NodeID, n)
	for i := 0; i < n; i++ {
		out[i] = sorted[(start+i)%len(sorted)].Node
	}
	return out, nil
}

// WeightedRoundRobin favors candidates proportionally to advertised free
// memory: each pick samples without replacement with probability mass equal
// to FreeBytes.
type WeightedRoundRobin struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewWeightedRoundRobin returns a seeded weighted balancer.
func NewWeightedRoundRobin(seed int64) *WeightedRoundRobin {
	return &WeightedRoundRobin{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Balancer.
func (w *WeightedRoundRobin) Name() string { return "weighted-rr" }

// Pick implements Balancer. Candidates with zero or negative free bytes are
// skipped, never returned: when too few nodes have room the pick fails with
// ErrInsufficientCandidates rather than handing back a full node.
func (w *WeightedRoundRobin) Pick(candidates []Candidate, n int) ([]NodeID, error) {
	pool := positive(candidates)
	if err := validate(pool, n); err != nil {
		return nil, err
	}
	out := make([]NodeID, 0, n)
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(out) < n {
		var total int64
		for _, c := range pool {
			total += c.FreeBytes
		}
		chosen := 0
		target := w.rng.Int63n(total)
		var cum int64
		for i, c := range pool {
			cum += c.FreeBytes
			if target < cum {
				chosen = i
				break
			}
		}
		out = append(out, pool[chosen].Node)
		pool = append(pool[:chosen], pool[chosen+1:]...)
	}
	return out, nil
}

// PowerOfTwo samples two random candidates per copy and keeps the one with
// more free memory (Mitzenmacher's power of two choices, the paper's [31]).
type PowerOfTwo struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewPowerOfTwo returns a seeded power-of-two-choices balancer.
func NewPowerOfTwo(seed int64) *PowerOfTwo {
	return &PowerOfTwo{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Balancer.
func (p *PowerOfTwo) Name() string { return "power-of-two" }

// Pick implements Balancer. Like the weighted balancer, candidates without
// free capacity are skipped instead of returned when samples run out.
func (p *PowerOfTwo) Pick(candidates []Candidate, n int) ([]NodeID, error) {
	pool := positive(candidates)
	if err := validate(pool, n); err != nil {
		return nil, err
	}
	out := make([]NodeID, 0, n)
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(out) < n {
		var chosen int
		if len(pool) == 1 {
			chosen = 0
		} else {
			a := p.rng.Intn(len(pool))
			b := p.rng.Intn(len(pool) - 1)
			if b >= a {
				b++
			}
			chosen = a
			if pool[b].FreeBytes > pool[a].FreeBytes {
				chosen = b
			}
		}
		out = append(out, pool[chosen].Node)
		pool = append(pool[:chosen], pool[chosen+1:]...)
	}
	return out, nil
}

// LoadAware is power-of-two choices scored on live digest figures rather
// than free bytes alone: each pick samples two candidates and keeps the one
// with the better free-capacity-per-latency score, so a node that is roomy
// but slow (saturated CPU, deep queues) loses to a slightly fuller fast one.
// Free-byte figures come from heartbeats and latency figures from the
// observability plane's per-node digests.
type LoadAware struct {
	mu  sync.Mutex
	rng *rand.Rand
	// ref normalizes the latency discount: figures at or below it cost
	// nothing, a figure k×ref divides the score by k.
	ref time.Duration
}

// NewLoadAware returns a seeded load-aware balancer normalizing latency
// against refLatency (non-positive defaults to 1 ms).
func NewLoadAware(seed int64, refLatency time.Duration) *LoadAware {
	if refLatency <= 0 {
		refLatency = time.Millisecond
	}
	return &LoadAware{rng: rand.New(rand.NewSource(seed)), ref: refLatency}
}

// Name implements Balancer.
func (l *LoadAware) Name() string { return "load-aware" }

// score is free capacity discounted by the latency multiple.
func (l *LoadAware) score(c Candidate) float64 {
	s := float64(c.FreeBytes)
	if c.Latency > l.ref {
		s *= float64(l.ref) / float64(c.Latency)
	}
	return s
}

// Pick implements Balancer. Full candidates are never returned.
func (l *LoadAware) Pick(candidates []Candidate, n int) ([]NodeID, error) {
	pool := positive(candidates)
	if err := validate(pool, n); err != nil {
		return nil, err
	}
	out := make([]NodeID, 0, n)
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(out) < n {
		var chosen int
		if len(pool) == 1 {
			chosen = 0
		} else {
			a := l.rng.Intn(len(pool))
			b := l.rng.Intn(len(pool) - 1)
			if b >= a {
				b++
			}
			chosen = a
			if l.score(pool[b]) > l.score(pool[a]) {
				chosen = b
			}
		}
		out = append(out, pool[chosen].Node)
		pool = append(pool[:chosen], pool[chosen+1:]...)
	}
	return out, nil
}

// domainSpread decorates a balancer with failure-domain spreading for
// erasure-coded stripes: an RS(k, m) stripe that loses a whole rack must not
// lose more than m shards, so no two shards should share a Candidate.Group.
// Picks go one node at a time, restricting the pool to domains not yet used;
// when every remaining candidate's domain is already used (or candidates are
// untagged, Group 0), the pool widens to all remaining candidates — domain
// spread is best-effort, capacity placement never fails because a cluster
// has fewer racks than shards.
type domainSpread struct {
	inner Balancer
}

// SpreadDomains wraps a balancer so successive picks of one Pick call land
// on distinct failure domains whenever candidates carry Group tags.
func SpreadDomains(b Balancer) Balancer { return &domainSpread{inner: b} }

// Name implements Balancer.
func (d *domainSpread) Name() string { return d.inner.Name() + "+spread" }

// Pick implements Balancer.
func (d *domainSpread) Pick(candidates []Candidate, n int) ([]NodeID, error) {
	if err := validate(candidates, n); err != nil {
		return nil, err
	}
	remaining := append([]Candidate(nil), candidates...)
	usedDomain := map[int]bool{}
	out := make([]NodeID, 0, n)
	for len(out) < n {
		fresh := make([]Candidate, 0, len(remaining))
		for _, c := range remaining {
			if c.Group == 0 || !usedDomain[c.Group] {
				fresh = append(fresh, c)
			}
		}
		pool := fresh
		if len(pool) == 0 {
			pool = remaining
		}
		picked, err := d.inner.Pick(pool, 1)
		if err != nil {
			return nil, err
		}
		out = append(out, picked[0])
		for i, c := range remaining {
			if c.Node == picked[0] {
				if c.Group != 0 {
					usedDomain[c.Group] = true
				}
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
	}
	return out, nil
}

// Compile-time interface compliance checks.
var (
	_ Balancer = (*Random)(nil)
	_ Balancer = (*RoundRobin)(nil)
	_ Balancer = (*WeightedRoundRobin)(nil)
	_ Balancer = (*PowerOfTwo)(nil)
	_ Balancer = (*LoadAware)(nil)
	_ Balancer = (*domainSpread)(nil)
)

// Imbalance summarizes how evenly a placement stream landed across nodes:
// the ratio of the maximum node load to the mean (1.0 is perfect balance).
func Imbalance(loads map[NodeID]int64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var total, maxLoad int64
	for _, v := range loads {
		total += v
		if v > maxLoad {
			maxLoad = v
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(loads))
	return float64(maxLoad) / mean
}
