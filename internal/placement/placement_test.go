package placement

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func candidates(n int) []Candidate {
	out := make([]Candidate, n)
	for i := range out {
		out[i] = Candidate{Node: NodeID(i), FreeBytes: 1 << 20}
	}
	return out
}

func allBalancers() []Balancer {
	return []Balancer{
		NewRandom(1),
		NewRoundRobin(),
		NewWeightedRoundRobin(1),
		NewPowerOfTwo(1),
	}
}

func TestPickReturnsDistinctNodes(t *testing.T) {
	for _, b := range allBalancers() {
		t.Run(b.Name(), func(t *testing.T) {
			cands := candidates(8)
			for trial := 0; trial < 100; trial++ {
				got, err := b.Pick(cands, 3)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != 3 {
					t.Fatalf("len = %d, want 3", len(got))
				}
				seen := map[NodeID]bool{}
				for _, id := range got {
					if seen[id] {
						t.Fatalf("duplicate node %d in %v", id, got)
					}
					seen[id] = true
					if id < 0 || int(id) >= len(cands) {
						t.Fatalf("node %d outside candidate set", id)
					}
				}
			}
		})
	}
}

func TestPickInsufficientCandidates(t *testing.T) {
	for _, b := range allBalancers() {
		t.Run(b.Name(), func(t *testing.T) {
			if _, err := b.Pick(candidates(2), 3); !errors.Is(err, ErrInsufficientCandidates) {
				t.Fatalf("err = %v, want ErrInsufficientCandidates", err)
			}
		})
	}
}

func TestPickRejectsNonPositiveN(t *testing.T) {
	for _, b := range allBalancers() {
		if _, err := b.Pick(candidates(3), 0); err == nil {
			t.Fatalf("%s: expected error for n=0", b.Name())
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	rr := NewRoundRobin()
	cands := candidates(4)
	var got []NodeID
	for i := 0; i < 8; i++ {
		ids, err := rr.Pick(cands, 1)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ids[0])
	}
	want := []NodeID{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", got, want)
		}
	}
}

func TestRoundRobinIgnoresCandidateOrder(t *testing.T) {
	rr := NewRoundRobin()
	shuffled := []Candidate{{Node: 3}, {Node: 1}, {Node: 0}, {Node: 2}}
	ids, err := rr.Pick(shuffled, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{0, 1, 2, 3}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want sorted %v", ids, want)
		}
	}
}

func TestWeightedPrefersFreeMemory(t *testing.T) {
	w := NewWeightedRoundRobin(7)
	cands := []Candidate{
		{Node: 0, FreeBytes: 1},
		{Node: 1, FreeBytes: 1 << 30},
	}
	hits := map[NodeID]int{}
	for i := 0; i < 1000; i++ {
		ids, err := w.Pick(cands, 1)
		if err != nil {
			t.Fatal(err)
		}
		hits[ids[0]]++
	}
	if hits[1] < 990 {
		t.Fatalf("heavy node picked %d/1000, want nearly always", hits[1])
	}
}

// An all-full cluster must fail the pick, not hand back a node whose Put is
// guaranteed to fail: the load-sensitive balancers skip candidates with zero
// or negative free bytes even when that exhausts every sample.
func TestAllFullClusterFailsPick(t *testing.T) {
	full := []Candidate{{Node: 0}, {Node: 1, FreeBytes: -5}, {Node: 2}}
	for _, b := range []Balancer{NewWeightedRoundRobin(7), NewPowerOfTwo(7), NewLoadAware(7, 0)} {
		t.Run(b.Name(), func(t *testing.T) {
			if _, err := b.Pick(full, 1); !errors.Is(err, ErrInsufficientCandidates) {
				t.Fatalf("err = %v, want ErrInsufficientCandidates", err)
			}
		})
	}
}

// With exactly one node still free, every pick lands on it regardless of how
// the samples fall.
func TestSkipsFullCandidates(t *testing.T) {
	cands := []Candidate{
		{Node: 0, FreeBytes: 0},
		{Node: 1, FreeBytes: 1 << 20},
		{Node: 2, FreeBytes: 0},
		{Node: 3, FreeBytes: -1},
	}
	for _, b := range []Balancer{NewWeightedRoundRobin(7), NewPowerOfTwo(7), NewLoadAware(7, 0)} {
		t.Run(b.Name(), func(t *testing.T) {
			for trial := 0; trial < 50; trial++ {
				ids, err := b.Pick(cands, 1)
				if err != nil {
					t.Fatal(err)
				}
				if ids[0] != 1 {
					t.Fatalf("picked full node %d", ids[0])
				}
			}
			if _, err := b.Pick(cands, 2); !errors.Is(err, ErrInsufficientCandidates) {
				t.Fatalf("want ErrInsufficientCandidates for n=2 with one free node")
			}
		})
	}
}

// The load-aware balancer must prefer a fast node over a roomy-but-slow one
// when the capacity gap is smaller than the latency gap.
func TestLoadAwarePrefersFastNode(t *testing.T) {
	la := NewLoadAware(7, time.Millisecond)
	cands := []Candidate{
		{Node: 0, FreeBytes: 12 << 20, Latency: 20 * time.Millisecond}, // roomy, saturated
		{Node: 1, FreeBytes: 8 << 20, Latency: time.Millisecond},       // slightly fuller, fast
	}
	hits := map[NodeID]int{}
	for i := 0; i < 1000; i++ {
		ids, err := la.Pick(cands, 1)
		if err != nil {
			t.Fatal(err)
		}
		hits[ids[0]]++
	}
	if hits[1] < 900 {
		t.Fatalf("fast node picked %d/1000, want dominant (hits %v)", hits[1], hits)
	}
}

func TestPowerOfTwoBeatsRandomOnSkewedLoad(t *testing.T) {
	// Nodes start with equal free memory; each placement consumes capacity,
	// so the balancer sees its own feedback. Power-of-two should land
	// noticeably more balanced than load-blind random.
	run := func(b Balancer) float64 {
		free := make([]int64, 16)
		for i := range free {
			free[i] = 1000
		}
		loads := map[NodeID]int64{}
		for i := 0; i < 800; i++ {
			cands := make([]Candidate, len(free))
			for j := range free {
				cands[j] = Candidate{Node: NodeID(j), FreeBytes: free[j]}
			}
			ids, err := b.Pick(cands, 1)
			if err != nil {
				t.Fatal(err)
			}
			loads[ids[0]]++
			if free[ids[0]] > 0 {
				free[ids[0]]--
			}
		}
		return Imbalance(loads)
	}
	random := run(NewRandom(3))
	p2c := run(NewPowerOfTwo(3))
	if p2c >= random {
		t.Fatalf("power-of-two imbalance %.3f not better than random %.3f", p2c, random)
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance(nil); got != 0 {
		t.Fatalf("empty = %v, want 0", got)
	}
	if got := Imbalance(map[NodeID]int64{0: 10, 1: 10}); got != 1 {
		t.Fatalf("balanced = %v, want 1", got)
	}
	if got := Imbalance(map[NodeID]int64{0: 30, 1: 10}); got != 1.5 {
		t.Fatalf("skewed = %v, want 1.5", got)
	}
	if got := Imbalance(map[NodeID]int64{0: 0, 1: 0}); got != 0 {
		t.Fatalf("zero loads = %v, want 0", got)
	}
}

func TestRandomDeterministicWithSeed(t *testing.T) {
	a := NewRandom(42)
	b := NewRandom(42)
	cands := candidates(10)
	for i := 0; i < 20; i++ {
		ga, _ := a.Pick(cands, 3)
		gb, _ := b.Pick(cands, 3)
		for j := range ga {
			if ga[j] != gb[j] {
				t.Fatalf("same seed diverged: %v vs %v", ga, gb)
			}
		}
	}
}

// Property: every balancer always returns n distinct in-range nodes for any
// candidate set large enough.
func TestPickProperty(t *testing.T) {
	for _, b := range allBalancers() {
		b := b
		f := func(sizes []uint8, nRaw uint8) bool {
			if len(sizes) < 3 {
				return true
			}
			cands := make([]Candidate, len(sizes))
			for i, s := range sizes {
				cands[i] = Candidate{Node: NodeID(i), FreeBytes: int64(s)}
			}
			n := int(nRaw)%3 + 1
			ids, err := b.Pick(cands, n)
			if err != nil {
				return false
			}
			seen := map[NodeID]bool{}
			for _, id := range ids {
				if seen[id] || int(id) >= len(cands) || id < 0 {
					return false
				}
				seen[id] = true
			}
			return len(ids) == n
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
	}
}

func BenchmarkPowerOfTwoPick(b *testing.B) {
	p := NewPowerOfTwo(1)
	cands := candidates(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Pick(cands, 3); err != nil {
			b.Fatal(err)
		}
	}
}
