//go:build !race

package ec

// raceEnabled reports whether the race detector is compiled in. See
// race_test.go for why the alloc-budget tests check it.
const raceEnabled = false
