package ec

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"godm/internal/replication"
)

// fakeStore is an in-memory replication.Store + ShardStore with per-node
// fault injection, standing in for the remote one-sided data path.
type fakeStore struct {
	mu      sync.Mutex
	data    map[string][]byte
	coords  map[string][3]int // idx, k, m per (node, id)
	dead    map[replication.NodeID]bool
	putErr  map[replication.NodeID]error
	puts    int
	deletes int
}

func newFakeStore() *fakeStore {
	return &fakeStore{
		data:   map[string][]byte{},
		coords: map[string][3]int{},
		dead:   map[replication.NodeID]bool{},
		putErr: map[replication.NodeID]error{},
	}
}

func fk(node replication.NodeID, id replication.EntryID) string {
	return fmt.Sprintf("%d/%d", node, id)
}

func (s *fakeStore) Put(ctx context.Context, node replication.NodeID, id replication.EntryID, data []byte) error {
	return s.PutShard(ctx, node, id, -1, 0, 0, data)
}

func (s *fakeStore) PutShard(ctx context.Context, node replication.NodeID, id replication.EntryID, idx, k, m int, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if err := s.putErr[node]; err != nil {
		return err
	}
	if s.dead[node] {
		return fmt.Errorf("node %d unreachable", node)
	}
	s.data[fk(node, id)] = append([]byte(nil), data...)
	s.coords[fk(node, id)] = [3]int{idx, k, m}
	return nil
}

func (s *fakeStore) Get(ctx context.Context, node replication.NodeID, id replication.EntryID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead[node] {
		return nil, fmt.Errorf("node %d unreachable", node)
	}
	d, ok := s.data[fk(node, id)]
	if !ok {
		return nil, fmt.Errorf("no entry %d on node %d", id, node)
	}
	return append([]byte(nil), d...), nil
}

func (s *fakeStore) Delete(ctx context.Context, node replication.NodeID, id replication.EntryID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deletes++
	delete(s.data, fk(node, id))
	delete(s.coords, fk(node, id))
	return nil
}

var _ ShardStore = (*fakeStore)(nil)

func pickFrom(pool ...replication.NodeID) replication.PickFunc {
	return func(count int, exclude []replication.NodeID) ([]replication.NodeID, error) {
		skip := map[replication.NodeID]bool{}
		for _, e := range exclude {
			skip[e] = true
		}
		var out []replication.NodeID
		for _, p := range pool {
			if len(out) == count {
				break
			}
			if !skip[p] {
				out = append(out, p)
			}
		}
		if len(out) < count {
			return nil, fmt.Errorf("pick: need %d, have %d", count, len(out))
		}
		return out, nil
	}
}

func TestPolicyWriteReadDelete(t *testing.T) {
	store := newFakeStore()
	p, err := NewPolicy(4, 2, store, WithSerialFanout())
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "rs4.2" || p.Width() != 6 || p.MinAlive() != 4 {
		t.Fatalf("policy identity: %s width %d minAlive %d", p.Name(), p.Width(), p.MinAlive())
	}
	if got := p.ShardClass(4096); got != 1024 {
		t.Fatalf("ShardClass(4096) = %d, want 1024", got)
	}
	nodes := []replication.NodeID{1, 2, 3, 4, 5, 6}
	data := make([]byte, 3000)
	rand.New(rand.NewSource(1)).Read(data)
	ctx := context.Background()
	if err := p.Write(ctx, nodes, 7, data); err != nil {
		t.Fatal(err)
	}
	// Every donor holds its shard at its position.
	for i, n := range nodes {
		co, ok := store.coords[fk(n, 7)]
		if !ok {
			t.Fatalf("node %d holds no shard", n)
		}
		if co != [3]int{i, 4, 2} {
			t.Fatalf("node %d coords = %v, want {%d 4 2}", n, co, i)
		}
	}
	got, primary, err := p.Read(ctx, nodes, 7)
	if err != nil {
		t.Fatal(err)
	}
	if primary != 1 || !bytes.Equal(got, data) {
		t.Fatalf("read back differs (primary %d)", primary)
	}
	// Sub-range reads, including ranges crossing shard boundaries.
	for _, r := range [][2]int{{0, 10}, {700, 200}, {749, 2}, {0, 3000}, {2999, 1}, {100, 0}} {
		part, err := p.ReadAt(ctx, nodes, 7, r[0], r[1])
		if err != nil {
			t.Fatalf("ReadAt(%d,%d): %v", r[0], r[1], err)
		}
		if !bytes.Equal(part, data[r[0]:r[0]+r[1]]) {
			t.Fatalf("ReadAt(%d,%d) differs", r[0], r[1])
		}
	}
	if _, err := p.ReadAt(ctx, nodes, 7, 2999, 2); err == nil {
		t.Fatal("out-of-range ReadAt succeeded")
	}
	if err := p.Delete(ctx, nodes, 7); err != nil {
		t.Fatal(err)
	}
	if len(store.data) != 0 {
		t.Fatalf("%d shards survive delete", len(store.data))
	}
	if _, _, err := p.Read(ctx, nodes, 7); !errors.Is(err, replication.ErrNoReplica) {
		t.Fatalf("read after delete: %v, want ErrNoReplica", err)
	}
}

func TestPolicyWriteAbortRollsBack(t *testing.T) {
	store := newFakeStore()
	p, _ := NewPolicy(2, 1, store, WithSerialFanout())
	store.putErr[3] = errors.New("no space")
	err := p.Write(context.Background(), []replication.NodeID{1, 2, 3}, 9, []byte("hello world"))
	if !errors.Is(err, replication.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if len(store.data) != 0 {
		t.Fatalf("%d shards stranded after aborted write", len(store.data))
	}
}

func TestPolicyDegradedRead(t *testing.T) {
	store := newFakeStore()
	p, _ := NewPolicy(4, 2, store, WithSerialFanout())
	nodes := []replication.NodeID{1, 2, 3, 4, 5, 6}
	data := make([]byte, 5000)
	rand.New(rand.NewSource(2)).Read(data)
	ctx := context.Background()
	if err := p.Write(ctx, nodes, 1, data); err != nil {
		t.Fatal(err)
	}
	store.dead[2] = true
	store.dead[4] = true // two dead donors: exactly m losses
	got, _, err := p.Read(ctx, nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read differs")
	}
	store.dead[1] = true // third loss: unrecoverable
	if _, _, err := p.Read(ctx, nodes, 1); !errors.Is(err, replication.ErrNoReplica) {
		t.Fatalf("read past tolerance: %v, want ErrNoReplica", err)
	}
}

func TestPolicyRestore(t *testing.T) {
	store := newFakeStore()
	p, _ := NewPolicy(4, 2, store, WithSerialFanout())
	nodes := []replication.NodeID{1, 2, 3, 4, 5, 6}
	data := make([]byte, 2048)
	rand.New(rand.NewSource(3)).Read(data)
	ctx := context.Background()
	if err := p.Write(ctx, nodes, 5, data); err != nil {
		t.Fatal(err)
	}
	// Donors 2 and 5 die (one data, one parity shard).
	store.dead[2], store.dead[5] = true, true
	newSet, still, err := p.Restore(ctx, nodes, 5, []replication.NodeID{2, 5}, pickFrom(7, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(still) != 0 {
		t.Fatalf("stillLost = %v, want none", still)
	}
	want := []replication.NodeID{1, 7, 3, 4, 8, 6}
	for i := range want {
		if newSet[i] != want[i] {
			t.Fatalf("newSet = %v, want %v", newSet, want)
		}
	}
	// Replacements hold byte-identical shards at the original positions.
	for i, n := range newSet {
		co := store.coords[fk(n, 5)]
		if co[0] != i {
			t.Fatalf("node %d hosts shard %d, want %d", n, co[0], i)
		}
	}
	got, _, err := p.Read(ctx, newSet, 5)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after restore: %v", err)
	}
}

// TestPolicyRestorePartial: when only one replacement exists for two lost
// shards, Restore must place what it can and report the remainder as
// stillLost — the requeue accounting the maintenance loop depends on.
func TestPolicyRestorePartial(t *testing.T) {
	store := newFakeStore()
	p, _ := NewPolicy(4, 2, store, WithSerialFanout())
	nodes := []replication.NodeID{1, 2, 3, 4, 5, 6}
	data := make([]byte, 2048)
	rand.New(rand.NewSource(4)).Read(data)
	ctx := context.Background()
	if err := p.Write(ctx, nodes, 6, data); err != nil {
		t.Fatal(err)
	}
	store.dead[1], store.dead[6] = true, true
	newSet, still, err := p.Restore(ctx, nodes, 6, []replication.NodeID{1, 6}, pickFrom(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(still) != 1 || still[0] != 6 {
		t.Fatalf("stillLost = %v, want [6]", still)
	}
	if newSet[0] != 9 || newSet[5] != 6 {
		t.Fatalf("newSet = %v: restored position should be 9, unrestored keeps 6", newSet)
	}
	// A later pass with capacity finishes the job.
	newSet2, still2, err := p.Restore(ctx, newSet, 6, []replication.NodeID{6}, pickFrom(10))
	if err != nil || len(still2) != 0 {
		t.Fatalf("second pass: still %v err %v", still2, err)
	}
	got, _, err := p.Read(ctx, newSet2, 6)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after staged restore: %v", err)
	}
}

// TestPolicyRestoreStaleLost: a queue entry whose lost donor is no longer in
// the stripe map (an earlier pass already replaced it) is a clean no-op, not
// an error loop.
func TestPolicyRestoreStaleLost(t *testing.T) {
	store := newFakeStore()
	p, _ := NewPolicy(2, 1, store, WithSerialFanout())
	nodes := []replication.NodeID{1, 2, 3}
	if err := p.Write(context.Background(), nodes, 8, []byte("some payload")); err != nil {
		t.Fatal(err)
	}
	newSet, still, err := p.Restore(context.Background(), nodes, 8, []replication.NodeID{42}, pickFrom(9))
	if err != nil || len(still) != 0 {
		t.Fatalf("stale restore: still %v err %v", still, err)
	}
	for i := range nodes {
		if newSet[i] != nodes[i] {
			t.Fatalf("stale restore mutated the set: %v", newSet)
		}
	}
}

// TestPolicyRestoreTooFewSurvivors: below k survivors the restore fails
// without progress and without fabricating shards.
func TestPolicyRestoreTooFewSurvivors(t *testing.T) {
	store := newFakeStore()
	p, _ := NewPolicy(4, 2, store, WithSerialFanout())
	nodes := []replication.NodeID{1, 2, 3, 4, 5, 6}
	data := make([]byte, 1024)
	rand.New(rand.NewSource(5)).Read(data)
	if err := p.Write(context.Background(), nodes, 2, data); err != nil {
		t.Fatal(err)
	}
	for _, n := range []replication.NodeID{1, 2, 3} {
		store.dead[n] = true
	}
	_, _, err := p.Restore(context.Background(), nodes, 2, []replication.NodeID{1, 2, 3}, pickFrom(7, 8, 9))
	if !errors.Is(err, ErrShortShards) {
		t.Fatalf("err = %v, want ErrShortShards", err)
	}
}
