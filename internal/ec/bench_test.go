package ec

import (
	"math/rand"
	"testing"

	"godm/internal/bufpool"
)

// encodeOnce runs one steady-state encode: pooled shard buffers, split,
// parity fill, release — the exact per-write work of the coding policy.
func encodeOnce(c *Code, data []byte) {
	s := c.ShardLen(len(data))
	shards := make([][]byte, c.Shards())
	for i := range shards {
		shards[i] = bufpool.Get(s)
	}
	c.Split(data, shards)
	_ = c.Encode(shards)
	for _, b := range shards {
		bufpool.Put(b)
	}
}

// TestEncodeAllocBudget pins the steady-state allocation cost of the encode
// hot path: with bufpool scratch, the only per-op allocation left is the
// k+m-slot shard slice header.
func TestEncodeAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	c, _ := New(4, 2)
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(3)).Read(data)
	encodeOnce(c, data) // warm the pool classes
	avg := testing.AllocsPerRun(200, func() { encodeOnce(c, data) })
	if avg > 2 {
		t.Errorf("encode hot path allocates %.1f objects/op, budget 2", avg)
	}
}

// TestDecodeAllocBudget pins the reconstruction path the same way (decode
// matrix cached after the first pattern).
func TestDecodeAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	c, _ := New(4, 2)
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(4)).Read(data)
	s := c.ShardLen(len(data))
	shards := make([][]byte, c.Shards())
	for i := range shards {
		shards[i] = make([]byte, s)
	}
	c.Split(data, shards)
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	present := make([]bool, c.Shards())
	decodeOnce := func() {
		for i := range present {
			present[i] = i != 0 && i != 1 // worst case: two data shards gone
		}
		_ = c.reconstructData(shards, present)
	}
	decodeOnce() // cache the decode matrix for this erasure pattern
	avg := testing.AllocsPerRun(200, decodeOnce)
	if avg > 0 {
		t.Errorf("decode hot path allocates %.1f objects/op, budget 0", avg)
	}
}

// BenchmarkECEncode measures RS(4,2) encode throughput (SetBytes = payload).
func BenchmarkECEncode(b *testing.B) {
	c, _ := New(4, 2)
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(5)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encodeOnce(c, data)
	}
}

// BenchmarkECDecode measures worst-case reconstruction throughput: both
// missing shards are data shards, decoded from two survivors plus both
// parity shards.
func BenchmarkECDecode(b *testing.B) {
	c, _ := New(4, 2)
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(6)).Read(data)
	s := c.ShardLen(len(data))
	shards := make([][]byte, c.Shards())
	for i := range shards {
		shards[i] = make([]byte, s)
	}
	c.Split(data, shards)
	if err := c.Encode(shards); err != nil {
		b.Fatal(err)
	}
	present := make([]bool, c.Shards())
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range present {
			present[j] = j != 0 && j != 1
		}
		if err := c.reconstructData(shards, present); err != nil {
			b.Fatal(err)
		}
	}
}
