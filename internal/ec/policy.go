package ec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"godm/internal/bufpool"
	"godm/internal/des"
	"godm/internal/metrics"
	"godm/internal/replication"
	"godm/internal/trace"
)

// ShardStore is an optional Store extension: put one shard of a stripe with
// its stripe coordinates, so the hosting donor can record shard metadata
// (index, k, m) and refuse a second shard of the same stripe — the
// distinct-donor placement rule enforced host-side.
type ShardStore interface {
	PutShard(ctx context.Context, node replication.NodeID, id replication.EntryID, idx, k, m int, data []byte) error
}

// HedgeFunc returns the hedge delay for reads touching a donor: how long a
// shard fetch may run before parity is fetched in its stead. The node
// manager derives it from the digest plane's per-donor get-p99; zero means
// no figure is known for that donor.
type HedgeFunc func(node replication.NodeID) time.Duration

// rollbackTimeout bounds the detached rollback of an aborted striped write,
// mirroring the replication protocol's.
const rollbackTimeout = 2 * time.Second

// stripeInfo is the owner-side record of one stripe — the raw payload length
// every shard length and read plan derives from. It lives beside the remote
// store's handles and shares their lifetime (lost with the owner).
type stripeInfo struct {
	rawLen int
}

// codingMetrics instruments the striped data path.
type codingMetrics struct {
	writes       *metrics.Counter
	writeAborts  *metrics.Counter
	reads        *metrics.Counter
	degraded     *metrics.Counter
	hedges       *metrics.Counter
	restores     *metrics.Counter
	reconstructs *metrics.Counter
	writeLatency *metrics.Histogram
	readLatency  *metrics.Histogram
}

func newCodingMetrics(reg *metrics.Registry) codingMetrics {
	return codingMetrics{
		writes:       reg.Counter("writes"),
		writeAborts:  reg.Counter("write_aborts"),
		reads:        reg.Counter("reads"),
		degraded:     reg.Counter("degraded_reads"),
		hedges:       reg.Counter("hedged_reads"),
		restores:     reg.Counter("restores"),
		reconstructs: reg.Counter("reconstructs"),
		writeLatency: reg.Histogram("write_latency"),
		readLatency:  reg.Histogram("read_latency"),
	}
}

// CodingPolicy implements replication.Policy with RS(k, m) striping: writes
// encode on the owner and fan the k+m shards out to distinct donors in one
// round trip; reads scatter the k data shards straight into the result
// buffer and reconstruct from parity when a donor is dead or slower than its
// hedge delay; Restore rebuilds lost shards from any k survivors instead of
// re-copying full blocks.
type CodingPolicy struct {
	code   *Code
	store  replication.Store
	serial bool
	hedge  HedgeFunc
	met    codingMetrics

	mu      sync.Mutex
	stripes map[replication.EntryID]stripeInfo
}

// PolicyOption configures a CodingPolicy.
type PolicyOption func(*CodingPolicy)

// WithHedge installs the per-donor hedge-delay source.
func WithHedge(fn HedgeFunc) PolicyOption {
	return func(p *CodingPolicy) { p.hedge = fn }
}

// WithPolicyMetrics mounts the policy's instrumentation on reg.
func WithPolicyMetrics(reg *metrics.Registry) PolicyOption {
	return func(p *CodingPolicy) {
		if reg != nil {
			p.met = newCodingMetrics(reg)
		}
	}
}

// WithSerialFanout forces serial shard fan-out and serial reads, mirroring
// replication.WithSerialFanout (the DES always gets this behavior).
func WithSerialFanout() PolicyOption {
	return func(p *CodingPolicy) { p.serial = true }
}

// NewPolicy returns an RS(k, m) coding policy over store.
func NewPolicy(k, m int, store replication.Store, opts ...PolicyOption) (*CodingPolicy, error) {
	if store == nil {
		return nil, errors.New("ec: nil store")
	}
	code, err := New(k, m)
	if err != nil {
		return nil, err
	}
	p := &CodingPolicy{
		code:    code,
		store:   store,
		met:     newCodingMetrics(metrics.NewRegistry("ec")),
		stripes: map[replication.EntryID]stripeInfo{},
	}
	for _, o := range opts {
		o(p)
	}
	return p, nil
}

var _ replication.Policy = (*CodingPolicy)(nil)

// Code exposes the underlying codec (benchmarks and tests).
func (p *CodingPolicy) Code() *Code { return p.code }

// Name implements replication.Policy.
func (p *CodingPolicy) Name() string { return fmt.Sprintf("rs%d.%d", p.code.k, p.code.m) }

// Width implements replication.Policy.
func (p *CodingPolicy) Width() int { return p.code.k + p.code.m }

// MinAlive implements replication.Policy: k shards reconstruct the stripe.
func (p *CodingPolicy) MinAlive() int { return p.code.k }

// ShardClass implements replication.Policy: each donor holds 1/k of the
// entry, rounded up.
func (p *CodingPolicy) ShardClass(entryClass int) int {
	return p.code.ShardLen(entryClass)
}

// serialIn reports whether ctx demands the deterministic serial plan.
func (p *CodingPolicy) serialIn(ctx context.Context) bool {
	if p.serial {
		return true
	}
	_, simulated := des.FromContext(ctx)
	return simulated
}

// fanout runs op for every shard position. Like the replication fan-out,
// every position is always attempted (no short-circuit) so the per-stream op
// sequence the seeded chaos replay sees stays independent of which donor
// fails first; over a real fabric positions run concurrently.
func (p *CodingPolicy) fanout(ctx context.Context, n int, op func(ctx context.Context, i int) error) []error {
	errs := make([]error, n)
	if p.serialIn(ctx) || n == 1 {
		for i := 0; i < n; i++ {
			errs[i] = op(ctx, i)
		}
		return errs
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = op(ctx, i)
		}(i)
	}
	wg.Wait()
	return errs
}

func (p *CodingPolicy) putShard(ctx context.Context, node replication.NodeID, id replication.EntryID, idx int, data []byte) error {
	if ss, ok := p.store.(ShardStore); ok {
		return ss.PutShard(ctx, node, id, idx, p.code.k, p.code.m, data)
	}
	return p.store.Put(ctx, node, id, data)
}

func (p *CodingPolicy) getShard(ctx context.Context, node replication.NodeID, id replication.EntryID, dst []byte) error {
	if sc, ok := p.store.(replication.ScatterStore); ok {
		return sc.GetInto(ctx, node, id, dst)
	}
	data, err := p.store.Get(ctx, node, id)
	if err != nil {
		return err
	}
	if len(data) != len(dst) {
		return fmt.Errorf("ec: shard is %d bytes, want %d", len(data), len(dst))
	}
	copy(dst, data)
	return nil
}

func (p *CodingPolicy) rawLen(id replication.EntryID) (int, bool) {
	p.mu.Lock()
	info, ok := p.stripes[id]
	p.mu.Unlock()
	return info.rawLen, ok
}

// Write implements replication.Policy: encode into k+m shards and fan them
// out to the k+m nodes (nodes[i] hosts shard i) as an atomic transaction —
// any failure rolls back the shards already placed.
func (p *CodingPolicy) Write(ctx context.Context, nodes []replication.NodeID, id replication.EntryID, data []byte) error {
	total := p.code.k + p.code.m
	if len(nodes) != total {
		return fmt.Errorf("ec: got %d nodes, stripe width is %d", len(nodes), total)
	}
	if len(data) == 0 {
		return errors.New("ec: empty payload")
	}
	ctx, sp := trace.Start(ctx, "ec.write")
	sp.Annotate("entry", uint64(id))
	sp.Annotate("shards", total)
	p.met.writes.Inc()
	start := trace.Now(ctx)
	s := p.code.ShardLen(len(data))
	shards := make([][]byte, total)
	for i := range shards {
		shards[i] = bufpool.Get(s)
	}
	defer func() {
		for _, b := range shards {
			bufpool.Put(b)
		}
	}()
	p.code.Split(data, shards)
	if err := p.code.Encode(shards); err != nil {
		sp.EndErr(err)
		return err
	}
	errs := p.fanout(ctx, total, func(ctx context.Context, i int) error {
		return p.putShard(ctx, nodes[i], id, i, shards[i])
	})
	failed := -1
	for i, err := range errs {
		if err != nil {
			failed = i
			break
		}
	}
	if failed < 0 {
		p.mu.Lock()
		p.stripes[id] = stripeInfo{rawLen: len(data)}
		p.mu.Unlock()
		p.met.writeLatency.Observe(trace.Now(ctx) - start)
		sp.End()
		return nil
	}
	// Roll back the shards that did land, detached from the caller's context
	// (the abort may be that context dying), bounded by a fresh deadline.
	rbCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), rollbackTimeout)
	defer cancel()
	for i, err := range errs {
		if err == nil {
			_ = p.store.Delete(rbCtx, nodes[i], id)
		}
	}
	p.met.writeAborts.Inc()
	err := fmt.Errorf("%w: shard %d on node %d: %v", replication.ErrAborted, failed, nodes[failed], errs[failed])
	sp.EndErr(err)
	return err
}

// hedgeDelay derives one read's hedge timer: the worst per-donor figure
// across the data shard donors (a read is as slow as its slowest donor).
// Zero — no figures known, or no hedge source installed — disables the
// timer; dead donors still trigger parity immediately via fetch errors.
func (p *CodingPolicy) hedgeDelay(nodes []replication.NodeID) time.Duration {
	if p.hedge == nil {
		return 0
	}
	var d time.Duration
	for _, n := range nodes[:p.code.k] {
		if h := p.hedge(n); h > d {
			d = h
		}
	}
	return d
}

// Read implements replication.Policy: fetch the k data shards scatter-style
// into the result buffer, hedging to parity + reconstruction when a donor is
// dead or slow.
func (p *CodingPolicy) Read(ctx context.Context, nodes []replication.NodeID, id replication.EntryID) ([]byte, replication.NodeID, error) {
	total := p.code.k + p.code.m
	if len(nodes) != total {
		return nil, 0, fmt.Errorf("ec: got %d nodes, stripe width is %d", len(nodes), total)
	}
	raw, ok := p.rawLen(id)
	if !ok {
		return nil, 0, fmt.Errorf("%w: entry %d: no stripe record", replication.ErrNoReplica, id)
	}
	ctx, sp := trace.Start(ctx, "ec.read")
	sp.Annotate("entry", uint64(id))
	p.met.reads.Inc()
	start := trace.Now(ctx)
	dst := make([]byte, raw)
	degraded := false
	err := p.code.ReadInto(ctx, dst, func(ctx context.Context, idx int, buf []byte) error {
		return p.getShard(ctx, nodes[idx], id, buf)
	}, ReadOpts{
		Serial: p.serialIn(ctx),
		Hedge:  p.hedgeDelay(nodes),
		OnHedge: func() {
			p.met.hedges.Inc()
			sp.Annotate("hedged", 1)
		},
		OnDegraded: func() {
			degraded = true
			p.met.degraded.Inc()
			sp.Annotate("degraded", 1)
		},
	})
	if err != nil {
		err = fmt.Errorf("%w: entry %d: %w", replication.ErrNoReplica, id, err)
		sp.EndErr(err)
		return nil, 0, err
	}
	_ = degraded
	p.met.readLatency.Observe(trace.Now(ctx) - start)
	sp.End()
	return dst, nodes[0], nil
}

// ReadAt implements replication.Policy: map the byte range onto the data
// shards holding it and read just those sub-ranges one-sided; any failure
// falls back to a full (possibly degraded) read.
func (p *CodingPolicy) ReadAt(ctx context.Context, nodes []replication.NodeID, id replication.EntryID, off, n int) ([]byte, error) {
	raw, ok := p.rawLen(id)
	if !ok {
		return nil, fmt.Errorf("%w: entry %d: no stripe record", replication.ErrNoReplica, id)
	}
	if off < 0 || n < 0 || off+n > raw {
		return nil, fmt.Errorf("ec: range [%d,%d) exceeds payload %d", off, off+n, raw)
	}
	if n == 0 {
		return []byte{}, nil
	}
	s := p.code.ShardLen(raw)
	if rs, ok := p.store.(replication.RangeStore); ok && len(nodes) == p.code.k+p.code.m {
		out := make([]byte, 0, n)
		pos := off
		for pos < off+n {
			j := pos / s
			shardOff := pos % s
			run := s - shardOff
			if rest := off + n - pos; run > rest {
				run = rest
			}
			part, err := rs.GetAt(ctx, nodes[j], id, shardOff, run)
			if err != nil {
				out = nil
				break
			}
			out = append(out, part...)
			pos += run
		}
		if out != nil {
			return out, nil
		}
	}
	// Degraded range read: assemble the whole stripe, then slice.
	data, _, err := p.Read(ctx, nodes, id)
	if err != nil {
		return nil, err
	}
	return data[off : off+n], nil
}

// Delete implements replication.Policy: release every shard; the first
// failure is reported after all positions were attempted.
func (p *CodingPolicy) Delete(ctx context.Context, nodes []replication.NodeID, id replication.EntryID) error {
	errs := p.fanout(ctx, len(nodes), func(ctx context.Context, i int) error {
		return p.store.Delete(ctx, nodes[i], id)
	})
	p.mu.Lock()
	delete(p.stripes, id)
	p.mu.Unlock()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("ec: delete shard %d on node %d: %w", i, nodes[i], err)
		}
	}
	return nil
}

// Restore implements replication.Policy: read the surviving shards, rebuild
// the lost positions by reconstruction, and place them on replacements from
// pick. Positions whose placement fails come back in stillLost so the
// maintenance queue retries just those — partial shard repairs no longer
// collapse into a binary repaired/failed verdict.
func (p *CodingPolicy) Restore(ctx context.Context, nodes []replication.NodeID, id replication.EntryID, lost []replication.NodeID, pick replication.PickFunc) ([]replication.NodeID, []replication.NodeID, error) {
	total := p.code.k + p.code.m
	if len(nodes) != total {
		return nodes, nil, fmt.Errorf("ec: got %d nodes, stripe width is %d", len(nodes), total)
	}
	raw, ok := p.rawLen(id)
	if !ok {
		return nodes, nil, fmt.Errorf("ec: entry %d: no stripe record", id)
	}
	lostSet := make(map[replication.NodeID]bool, len(lost))
	for _, l := range lost {
		lostSet[l] = true
	}
	var missingPos []int
	for i, n := range nodes {
		if lostSet[n] {
			missingPos = append(missingPos, i)
		}
	}
	if len(missingPos) == 0 {
		// Already handled by an earlier pass: the queue entry is stale.
		return nodes, nil, nil
	}
	ctx, sp := trace.Start(ctx, "ec.restore")
	sp.Annotate("entry", uint64(id))
	sp.Annotate("missing", len(missingPos))
	defer sp.End()
	p.met.restores.Inc()

	s := p.code.ShardLen(raw)
	shards := make([][]byte, total)
	present := make([]bool, total)
	defer func() {
		for _, b := range shards {
			bufpool.Put(b)
		}
	}()
	got := 0
	var lastErr error
	for i := 0; i < total; i++ {
		shards[i] = bufpool.Get(s)
		if lostSet[nodes[i]] {
			continue
		}
		if err := p.getShard(ctx, nodes[i], id, shards[i]); err != nil {
			lastErr = err
			continue
		}
		present[i] = true
		got++
	}
	if got < p.code.k {
		err := fmt.Errorf("%w: entry %d: %d of %d shards survive: %w", ErrShortShards, id, got, p.code.k, lastErr)
		sp.Annotate("err", err)
		return nodes, nil, err
	}
	if err := p.code.Reconstruct(shards, present); err != nil {
		return nodes, nil, err
	}
	p.met.reconstructs.Add(int64(len(missingPos)))

	// Draw replacements; when the cluster cannot supply one per missing
	// position, restore as many as it can and requeue the rest.
	want := len(missingPos)
	var replacements []replication.NodeID
	var pickErr error
	for want > 0 {
		replacements, pickErr = pick(want, nodes)
		if pickErr == nil {
			break
		}
		want--
	}
	newSet := append([]replication.NodeID(nil), nodes...)
	var still []replication.NodeID
	restored := 0
	for i, pos := range missingPos {
		if i >= len(replacements) {
			still = append(still, nodes[pos])
			continue
		}
		if err := p.putShard(ctx, replacements[i], id, pos, shards[pos]); err != nil {
			if lastErr = err; pickErr == nil {
				pickErr = err
			}
			still = append(still, nodes[pos])
			continue
		}
		newSet[pos] = replacements[i]
		restored++
	}
	if restored == 0 {
		if pickErr == nil {
			pickErr = lastErr
		}
		return nodes, nil, fmt.Errorf("ec: restore of entry %d made no progress: %w", id, pickErr)
	}
	return newSet, still, nil
}
