package ec

import "fmt"

// matrix is a dense row-major matrix over GF(2^8).
type matrix [][]byte

func newMatrix(rows, cols int) matrix {
	backing := make([]byte, rows*cols)
	m := make(matrix, rows)
	for i := range m {
		m[i] = backing[i*cols : (i+1)*cols]
	}
	return m
}

// invert returns m's inverse by Gauss–Jordan elimination over the field.
// m must be square; it is not modified.
func (m matrix) invert() (matrix, error) {
	n := len(m)
	// Augment [m | I] and reduce the left half to the identity.
	work := newMatrix(n, 2*n)
	for i := 0; i < n; i++ {
		copy(work[i], m[i])
		work[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("ec: singular matrix at column %d", col)
		}
		work[col], work[pivot] = work[pivot], work[col]
		if inv := gfInv(work[col][col]); inv != 1 {
			row := work[col]
			scale := &gfMul[inv]
			for j := range row {
				row[j] = scale[row[j]]
			}
		}
		for r := 0; r < n; r++ {
			if r == col || work[r][col] == 0 {
				continue
			}
			mulAdd(work[r][col], work[col], work[r])
		}
	}
	out := newMatrix(n, n)
	for i := 0; i < n; i++ {
		copy(out[i], work[i][n:])
	}
	return out, nil
}
