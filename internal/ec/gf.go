// Package ec implements Reed–Solomon erasure coding over GF(2^8) for the
// disaggregated memory pool: an RS(k, m) stripe splits an entry into k data
// shards and m parity shards placed on k+m distinct donors, surviving any m
// donor losses at k+m/k times the entry's size — against 3x for triple
// replication (Hydra/Carbink-style coding from the Maruf/Chowdhury survey).
// Reconstructing from the fastest k shards doubles as a tail-latency hedge:
// a read that is still waiting on a slow donor past its SLO-derived hedge
// delay fetches parity and decodes instead of waiting.
//
// The codec is pure Go: log/exp tables for the field, a full 256x256 product
// table for the encode/decode inner loops, a Cauchy generator matrix (every
// square submatrix of a Cauchy matrix is invertible, so the extended
// [I; C] generator is MDS), and decode matrices cached per erasure pattern.
package ec

// The field is GF(2^8) modulo x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the
// conventional Reed–Solomon polynomial.
const gfPoly = 0x11D

var (
	// gfExp is double length so products of logs index it without a mod.
	gfExp [512]byte
	gfLog [256]int16
	// gfMul is the full product table; the shard inner loops index one row
	// per coefficient, so a multiply is a single table load.
	gfMul [256][256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = int16(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			gfMul[a][b] = gfExp[int(gfLog[a])+int(gfLog[b])]
		}
	}
}

// gfInv returns the multiplicative inverse of a (a must be non-zero).
func gfInv(a byte) byte { return gfExp[255-int(gfLog[a])] }

// mulAdd computes out[i] ^= c*in[i] over the field.
func mulAdd(c byte, in, out []byte) {
	if c == 0 {
		return
	}
	row := &gfMul[c]
	_ = out[len(in)-1]
	for i, v := range in {
		out[i] ^= row[v]
	}
}

// mulAssign computes out[i] = c*in[i], overwriting out — the first term of a
// row combination, so callers never have to zero a scratch buffer first.
func mulAssign(c byte, in, out []byte) {
	row := &gfMul[c]
	_ = out[len(in)-1]
	for i, v := range in {
		out[i] = row[v]
	}
}
