package ec

import (
	"errors"
	"fmt"
	"sync"
)

// Sentinel errors.
var (
	// ErrShortShards is returned when fewer than k shards of a stripe are
	// available, so the data is unrecoverable until more donors return.
	ErrShortShards = errors.New("ec: fewer than k shards available")
)

// maxShards bounds k+m. The erasure-pattern cache keys decode matrices by a
// shard bitmask, and the Cauchy construction needs k+m distinct field
// elements, so 64 is both sufficient and far above any deployment here.
const maxShards = 64

// Code is an RS(k, m) codec: k data shards, m parity shards, any k of the
// k+m recover the stripe. Safe for concurrent use; decode matrices are
// computed once per erasure pattern and cached.
type Code struct {
	k, m int
	// parity is the m x k Cauchy block of the generator: row i, column j is
	// 1/((k+i) ^ j). The full generator is [I; parity].
	parity matrix

	mu  sync.RWMutex
	inv map[uint64]matrix // decode matrices keyed by present-shard bitmask
}

// New returns an RS(k, m) codec.
func New(k, m int) (*Code, error) {
	if k < 1 || m < 1 {
		return nil, fmt.Errorf("ec: rs(%d,%d): both k and m must be >= 1", k, m)
	}
	if k+m > maxShards {
		return nil, fmt.Errorf("ec: rs(%d,%d): k+m exceeds %d shards", k, m, maxShards)
	}
	c := &Code{k: k, m: m, parity: newMatrix(m, k), inv: map[uint64]matrix{}}
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			// x_i = k+i and y_j = j are disjoint, so x_i ^ y_j is never zero.
			c.parity[i][j] = gfInv(byte((k + i) ^ j))
		}
	}
	return c, nil
}

// K returns the data shard count.
func (c *Code) K() int { return c.k }

// M returns the parity shard count.
func (c *Code) M() int { return c.m }

// Shards returns the stripe width k+m.
func (c *Code) Shards() int { return c.k + c.m }

// ShardLen returns the per-shard length for a payload of dataLen bytes:
// ceil(dataLen/k), at least 1 so every shard is a real allocation.
func (c *Code) ShardLen(dataLen int) int {
	n := (dataLen + c.k - 1) / c.k
	if n < 1 {
		n = 1
	}
	return n
}

// Split copies data into the k data shards of shards (each pre-sized to
// ShardLen(len(data))), zero-padding the tail.
func (c *Code) Split(data []byte, shards [][]byte) {
	s := c.ShardLen(len(data))
	for j := 0; j < c.k; j++ {
		dst := shards[j][:s]
		start := j * s
		n := 0
		if start < len(data) {
			n = copy(dst, data[start:])
		}
		for i := n; i < s; i++ {
			dst[i] = 0
		}
	}
}

// Join copies the data shards back into dst (len(dst) is the payload length;
// the final shard's padding is dropped).
func (c *Code) Join(dst []byte, shards [][]byte) {
	s := c.ShardLen(len(dst))
	for j := 0; j < c.k; j++ {
		start := j * s
		if start >= len(dst) {
			break
		}
		copy(dst[start:], shards[j])
	}
}

// Encode fills the m parity shards from the k data shards. shards must hold
// k+m equal-length slices; the first k are inputs, the rest are overwritten.
func (c *Code) Encode(shards [][]byte) error {
	if err := c.checkShards(shards); err != nil {
		return err
	}
	for _, s := range shards {
		if s == nil {
			return errors.New("ec: encode requires all k+m shard buffers")
		}
	}
	for i := 0; i < c.m; i++ {
		out := shards[c.k+i]
		mulAssign(c.parity[i][0], shards[0], out)
		for j := 1; j < c.k; j++ {
			mulAdd(c.parity[i][j], shards[j], out)
		}
	}
	return nil
}

// Reconstruct rebuilds every missing shard (present[i] == false) that has a
// non-nil buffer in shards, from any k present shards, and marks it present.
// Missing positions with nil buffers are skipped — callers that only need
// some positions pass buffers only for those. Reconstructing a missing
// parity shard requires every data position to carry a buffer (present or
// reconstructable), which all callers in this repo satisfy.
func (c *Code) Reconstruct(shards [][]byte, present []bool) error {
	if err := c.reconstructData(shards, present); err != nil {
		return err
	}
	for i := 0; i < c.m; i++ {
		if present[c.k+i] || shards[c.k+i] == nil {
			continue
		}
		out := shards[c.k+i]
		mulAssign(c.parity[i][0], shards[0], out)
		for j := 1; j < c.k; j++ {
			mulAdd(c.parity[i][j], shards[j], out)
		}
		present[c.k+i] = true
	}
	return nil
}

// ReconstructData rebuilds only the missing data shards — the read path's
// need: parity is never returned to callers.
func (c *Code) ReconstructData(shards [][]byte, present []bool) error {
	return c.reconstructData(shards, present)
}

func (c *Code) reconstructData(shards [][]byte, present []bool) error {
	if err := c.checkShards(shards); err != nil {
		return err
	}
	if len(present) != c.k+c.m {
		return fmt.Errorf("ec: present has %d slots, want %d", len(present), c.k+c.m)
	}
	missing := 0
	for j := 0; j < c.k; j++ {
		if !present[j] {
			missing++
		}
	}
	if missing == 0 {
		return nil
	}
	// Choose k present shards, data rows first: decode rows for surviving
	// data shards are then unit vectors and cost nothing to apply.
	var chosen [maxShards]int
	var mask uint64
	n := 0
	for i := 0; i < c.k+c.m && n < c.k; i++ {
		if present[i] && shards[i] != nil {
			chosen[n] = i
			mask |= 1 << uint(i)
			n++
		}
	}
	if n < c.k {
		return fmt.Errorf("%w: have %d of %d", ErrShortShards, n, c.k)
	}
	dec, err := c.decodeMatrix(mask, chosen[:c.k])
	if err != nil {
		return err
	}
	for j := 0; j < c.k; j++ {
		if present[j] || shards[j] == nil {
			continue
		}
		out := shards[j]
		mulAssign(dec[j][0], shards[chosen[0]], out)
		for col := 1; col < c.k; col++ {
			mulAdd(dec[j][col], shards[chosen[col]], out)
		}
		present[j] = true
	}
	return nil
}

// decodeMatrix returns the k x k matrix mapping the chosen shards back to
// the data shards, cached per erasure pattern.
func (c *Code) decodeMatrix(mask uint64, chosen []int) (matrix, error) {
	c.mu.RLock()
	dec, ok := c.inv[mask]
	c.mu.RUnlock()
	if ok {
		return dec, nil
	}
	// The chosen shards are the generator rows for those indices applied to
	// the data vector; inverting that submatrix recovers the data.
	sub := newMatrix(c.k, c.k)
	for r, idx := range chosen {
		if idx < c.k {
			sub[r][idx] = 1
		} else {
			copy(sub[r], c.parity[idx-c.k])
		}
	}
	dec, err := sub.invert()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.inv[mask] = dec
	c.mu.Unlock()
	return dec, nil
}

func (c *Code) checkShards(shards [][]byte) error {
	if len(shards) != c.k+c.m {
		return fmt.Errorf("ec: got %d shards, want %d", len(shards), c.k+c.m)
	}
	size := -1
	for _, s := range shards {
		if s == nil {
			continue
		}
		if size < 0 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("ec: shard sizes differ (%d vs %d)", size, len(s))
		}
	}
	if size <= 0 {
		return errors.New("ec: no shards")
	}
	return nil
}
