package ec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// combos are the stripe geometries under test: the deployment default
// rs4.2, minimal and parity-heavy shapes, and a wide stripe.
var combos = [][2]int{{2, 1}, {4, 2}, {3, 3}, {1, 2}, {10, 4}}

func makeStripe(t *testing.T, c *Code, data []byte) [][]byte {
	t.Helper()
	s := c.ShardLen(len(data))
	shards := make([][]byte, c.Shards())
	for i := range shards {
		shards[i] = make([]byte, s)
	}
	c.Split(data, shards)
	if err := c.Encode(shards); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return shards
}

// erasurePatterns enumerates every subset of up to m shard positions out of
// total (the patterns an RS(k, m) stripe must survive).
func erasurePatterns(total, m int) [][]int {
	var out [][]int
	var walk func(start int, cur []int)
	walk = func(start int, cur []int) {
		if len(cur) > 0 {
			out = append(out, append([]int(nil), cur...))
		}
		if len(cur) == m {
			return
		}
		for i := start; i < total; i++ {
			walk(i+1, append(cur, i))
		}
	}
	walk(0, nil)
	return out
}

// TestReconstructAllErasures is the core MDS property: any m or fewer
// erasures — data, parity, or a mix — reconstruct every shard
// byte-identically.
func TestReconstructAllErasures(t *testing.T) {
	for _, km := range combos {
		k, m := km[0], km[1]
		c, err := New(k, m)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		data := make([]byte, 1000+k)
		rng.Read(data)
		want := makeStripe(t, c, data)
		for _, pattern := range erasurePatterns(k+m, m) {
			shards := make([][]byte, len(want))
			present := make([]bool, len(want))
			for i := range want {
				shards[i] = append([]byte(nil), want[i]...)
				present[i] = true
			}
			for _, e := range pattern {
				for j := range shards[e] {
					shards[e][j] = 0xEE // poison, not just zero
				}
				present[e] = false
			}
			if err := c.Reconstruct(shards, present); err != nil {
				t.Fatalf("rs(%d,%d) erasures %v: %v", k, m, pattern, err)
			}
			for i := range want {
				if !bytes.Equal(shards[i], want[i]) {
					t.Fatalf("rs(%d,%d) erasures %v: shard %d differs after reconstruction", k, m, pattern, i)
				}
				if !present[i] {
					t.Fatalf("rs(%d,%d) erasures %v: shard %d not marked present", k, m, pattern, i)
				}
			}
			// The payload itself survives via Join.
			got := make([]byte, len(data))
			c.Join(got, shards)
			if !bytes.Equal(got, data) {
				t.Fatalf("rs(%d,%d) erasures %v: joined payload differs", k, m, pattern)
			}
		}
	}
}

// TestReconstructTooManyErasures: m+1 erasures must fail with ErrShortShards,
// never silently return wrong bytes.
func TestReconstructTooManyErasures(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 512)
	rand.New(rand.NewSource(7)).Read(data)
	shards := makeStripe(t, c, data)
	present := []bool{false, false, false, true, true, true}
	if err := c.Reconstruct(shards, present); !errors.Is(err, ErrShortShards) {
		t.Fatalf("3 erasures on rs(4,2): err = %v, want ErrShortShards", err)
	}
}

// TestEncodeDeterministic: the codec is a pure function of (k, m, payload) —
// two independently-built codecs produce bit-identical parity, the property
// the chaos replay and any cross-node repair rely on.
func TestEncodeDeterministic(t *testing.T) {
	for _, km := range combos {
		k, m := km[0], km[1]
		c1, _ := New(k, m)
		c2, _ := New(k, m)
		data := make([]byte, 4096)
		rand.New(rand.NewSource(1337)).Read(data)
		s1 := makeStripe(t, c1, data)
		s2 := makeStripe(t, c2, data)
		for i := range s1 {
			if !bytes.Equal(s1[i], s2[i]) {
				t.Fatalf("rs(%d,%d): shard %d differs between codec instances", k, m, i)
			}
		}
	}
}

// TestSplitJoinEdges covers payloads that do not divide evenly and payloads
// shorter than k.
func TestSplitJoinEdges(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 4, 5, 7, 1023, 1025} {
		data := make([]byte, n)
		rand.New(rand.NewSource(int64(n))).Read(data)
		shards := makeStripe(t, c, data)
		got := make([]byte, n)
		c.Join(got, shards)
		if !bytes.Equal(got, data) {
			t.Fatalf("payload %d bytes: join differs from split input", n)
		}
	}
}

// TestGeometryLimits: invalid (k, m) are rejected.
func TestGeometryLimits(t *testing.T) {
	for _, km := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {60, 5}} {
		if _, err := New(km[0], km[1]); err == nil {
			t.Errorf("New(%d, %d) succeeded, want error", km[0], km[1])
		}
	}
	if _, err := New(60, 4); err != nil {
		t.Errorf("New(60, 4): %v, want ok at the 64-shard boundary", err)
	}
}

// TestGFInverse sanity-checks the field tables the whole codec stands on.
func TestGFInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := gfMul[byte(a)][gfInv(byte(a))]; got != 1 {
			t.Fatalf("a * inv(a) = %d for a = %d", got, a)
		}
	}
	for a := 0; a < 256; a++ {
		if gfMul[byte(a)][0] != 0 || gfMul[0][byte(a)] != 0 {
			t.Fatalf("a * 0 != 0 for a = %d", a)
		}
	}
}

// TestMatrixInvert round-trips a random invertible matrix.
func TestMatrixInvert(t *testing.T) {
	c, _ := New(4, 4)
	// Every square submatrix of the Cauchy generator is invertible; take the
	// all-parity decode case (hardest pattern).
	sub := newMatrix(4, 4)
	for r := 0; r < 4; r++ {
		copy(sub[r], c.parity[r])
	}
	inv, err := sub.invert()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var got byte
			for l := 0; l < 4; l++ {
				got ^= gfMul[sub[i][l]][inv[l][j]]
			}
			want := byte(0)
			if i == j {
				want = 1
			}
			if got != want {
				t.Fatalf("(M * inv(M))[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
	singular := newMatrix(2, 2) // all zeros
	if _, err := singular.invert(); err == nil {
		t.Fatal("inverting a singular matrix succeeded")
	}
}
