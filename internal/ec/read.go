package ec

import (
	"context"
	"fmt"
	"sync"
	"time"

	"godm/internal/bufpool"
)

// FetchFunc reads shard idx of a stripe fully into dst. It must not retain
// or touch dst after returning (the transport.ScatterReader contract).
type FetchFunc func(ctx context.Context, idx int, dst []byte) error

// ReadOpts shapes one ReadInto call.
type ReadOpts struct {
	// Serial forces the deterministic plan: data shards are fetched one at a
	// time in index order and parity only on error. The discrete-event
	// simulation requires it — a simulated process must issue fabric ops
	// serially from its own goroutine — and the chaos replay tests rely on
	// the resulting fixed op sequence.
	Serial bool
	// Hedge arms the tail-latency timer: if the k data fetches have not all
	// completed after this long, parity fetches launch and the read completes
	// from the fastest k shards. Zero disables the timer (parity still
	// launches immediately when a data fetch fails).
	Hedge time.Duration
	// OnHedge fires when the hedge timer launches parity fetches.
	OnHedge func()
	// OnDegraded fires when the read had to reconstruct (a donor dead or
	// outrun by the hedge).
	OnDegraded func()
}

// ReadInto assembles a stripe's payload into dst (whose length is the
// payload's raw length) by fetching data shards scatter-style — each shard's
// bytes land directly in its dst region — and reconstructing from parity
// when donors fail or dawdle. On return dst is complete and no fetch touches
// it again; internal scratch buffers may be released asynchronously once
// their in-flight fetches drain.
func (c *Code) ReadInto(ctx context.Context, dst []byte, fetch FetchFunc, opts ReadOpts) error {
	if len(dst) == 0 {
		return fmt.Errorf("ec: empty read destination")
	}
	if opts.Serial {
		return c.readSerial(ctx, dst, fetch, opts)
	}
	return c.readConcurrent(ctx, dst, fetch, opts)
}

// dataDst returns the fetch destination for data shard j: a window of dst
// when the shard lies fully inside it, otherwise a pooled scratch buffer
// (the stripe tail is zero-padded past len(dst)).
func dataDst(dst []byte, j, shardLen int) (buf []byte, scratch bool) {
	start := j * shardLen
	if start+shardLen <= len(dst) {
		return dst[start : start+shardLen], false
	}
	return bufpool.Get(shardLen), true
}

// copyTail copies the useful prefix of a scratch-fetched data shard back
// into dst.
func copyTail(dst []byte, j, shardLen int, buf []byte) {
	start := j * shardLen
	if start < len(dst) {
		copy(dst[start:], buf[:len(dst)-start])
	}
}

func (c *Code) readSerial(ctx context.Context, dst []byte, fetch FetchFunc, opts ReadOpts) error {
	s := c.ShardLen(len(dst))
	total := c.k + c.m
	shards := make([][]byte, total)
	present := make([]bool, total)
	var scratch [][]byte
	defer func() {
		for _, b := range scratch {
			bufpool.Put(b)
		}
	}()
	got := 0
	var lastErr error
	for j := 0; j < c.k; j++ {
		buf, isScratch := dataDst(dst, j, s)
		if isScratch {
			scratch = append(scratch, buf)
		}
		shards[j] = buf
		if err := fetch(ctx, j, buf); err != nil {
			lastErr = err
			continue
		}
		present[j] = true
		got++
	}
	if got < c.k {
		if opts.OnDegraded != nil {
			opts.OnDegraded()
		}
		for i := c.k; i < total && got < c.k; i++ {
			buf := bufpool.Get(s)
			scratch = append(scratch, buf)
			shards[i] = buf
			if err := fetch(ctx, i, buf); err != nil {
				lastErr = err
				continue
			}
			present[i] = true
			got++
		}
		if got < c.k {
			return fmt.Errorf("%w: %w", ErrShortShards, lastErr)
		}
		if err := c.reconstructData(shards, present); err != nil {
			return err
		}
	}
	for j := 0; j < c.k; j++ {
		if j*s+s > len(dst) {
			copyTail(dst, j, s, shards[j])
		}
	}
	return nil
}

func (c *Code) readConcurrent(ctx context.Context, dst []byte, fetch FetchFunc, opts ReadOpts) error {
	s := c.ShardLen(len(dst))
	total := c.k + c.m
	shards := make([][]byte, total)
	var scratch [][]byte

	results := make(chan int, total) // completed shard indices (ok or failed)
	errs := make([]error, total)
	cancels := make([]context.CancelFunc, total)
	done := make([]bool, total)
	ok := make([]bool, total)
	var wg sync.WaitGroup
	launched := make([]bool, total)
	launch := func(i int) {
		if launched[i] {
			return
		}
		launched[i] = true
		fctx, cancel := context.WithCancel(ctx)
		cancels[i] = cancel
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = fetch(fctx, i, shards[i])
			results <- i
		}()
	}

	for j := 0; j < c.k; j++ {
		buf, isScratch := dataDst(dst, j, s)
		if isScratch {
			scratch = append(scratch, buf)
		}
		shards[j] = buf
		launch(j)
	}

	hedged := false
	hedgeParity := func() {
		if hedged {
			return
		}
		hedged = true
		for i := c.k; i < total; i++ {
			buf := bufpool.Get(s)
			scratch = append(scratch, buf)
			shards[i] = buf
			launch(i)
		}
	}

	var timerC <-chan time.Time
	var timer *time.Timer
	if opts.Hedge > 0 {
		timer = time.NewTimer(opts.Hedge)
		timerC = timer.C
		defer timer.Stop()
	}

	// releaseLater hands the scratch buffers back to the pool only after
	// every in-flight fetch has drained: a cancelled straggler may write its
	// own buffer right up to its return.
	releaseLater := func() {
		go func() {
			wg.Wait()
			for _, b := range scratch {
				bufpool.Put(b)
			}
		}()
	}
	cancelPending := func() {
		for i := 0; i < total; i++ {
			if launched[i] && !done[i] && cancels[i] != nil {
				cancels[i]()
			}
		}
	}
	// drainPending waits for every launched fetch to report, so no goroutine
	// can still be writing into dst (or a buffer we are about to decode into).
	drainPending := func() {
		remaining := 0
		for i := 0; i < total; i++ {
			if launched[i] && !done[i] {
				remaining++
			}
		}
		for ; remaining > 0; remaining-- {
			idx := <-results
			done[idx] = true
			ok[idx] = errs[idx] == nil
		}
	}

	okData, okTotal, pending := 0, 0, c.k
	var lastErr error
	for okData < c.k && okTotal < c.k {
		// Give up once the outstanding and unlaunched fetches cannot reach k.
		spare := 0
		if !hedged {
			spare = c.m
		}
		if okTotal+pending+spare < c.k {
			break
		}
		select {
		case idx := <-results:
			pending--
			done[idx] = true
			if errs[idx] == nil {
				ok[idx] = true
				okTotal++
				if idx < c.k {
					okData++
				}
			} else {
				lastErr = errs[idx]
				if !hedged {
					hedgeParity()
					pending += c.m
				}
			}
		case <-timerC:
			timerC = nil
			if !hedged {
				if opts.OnHedge != nil {
					opts.OnHedge()
				}
				hedgeParity()
				pending += c.m
			}
		}
	}

	if okData == c.k {
		// Fast path: every data shard landed in place. Any hedged parity
		// fetches still in flight write only into scratch; cancel them and
		// let the drain release scratch in the background.
		cancelPending()
		for j := 0; j < c.k; j++ {
			if j*s+s > len(dst) {
				copyTail(dst, j, s, shards[j])
			}
		}
		releaseLater()
		return nil
	}

	// Reconstruction (or failure): wait until nothing is writing into dst.
	cancelPending()
	drainPending()
	defer func() {
		for _, b := range scratch {
			bufpool.Put(b)
		}
	}()
	okTotal = 0
	for i := 0; i < total; i++ {
		if ok[i] {
			okTotal++
		}
	}
	if okTotal < c.k {
		if lastErr == nil {
			lastErr = ctx.Err()
		}
		return fmt.Errorf("%w: %w", ErrShortShards, lastErr)
	}
	if opts.OnDegraded != nil {
		opts.OnDegraded()
	}
	if err := c.reconstructData(shards, ok); err != nil {
		return err
	}
	for j := 0; j < c.k; j++ {
		if j*s+s > len(dst) {
			copyTail(dst, j, s, shards[j])
		}
	}
	return nil
}
