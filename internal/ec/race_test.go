//go:build race

package ec

// raceEnabled reports whether the race detector is compiled in; the
// alloc-budget tests skip under it because its instrumentation allocates.
const raceEnabled = true
