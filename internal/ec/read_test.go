package ec

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// stripeFetcher serves ReadInto from an in-memory stripe, with per-shard
// fault and delay injection.
type stripeFetcher struct {
	shards  [][]byte
	fail    map[int]bool
	delay   map[int]time.Duration
	fetches atomic.Int64
}

func (f *stripeFetcher) fetch(ctx context.Context, idx int, dst []byte) error {
	f.fetches.Add(1)
	if d, ok := f.delay[idx]; ok {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if f.fail[idx] {
		return fmt.Errorf("shard %d: donor dead", idx)
	}
	copy(dst, f.shards[idx])
	return nil
}

func newStripeFetcher(t *testing.T, c *Code, data []byte) *stripeFetcher {
	t.Helper()
	return &stripeFetcher{
		shards: makeStripe(t, c, data),
		fail:   map[int]bool{},
		delay:  map[int]time.Duration{},
	}
}

func testPayload(n int, seed int64) []byte {
	data := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(data)
	return data
}

func TestReadIntoHealthy(t *testing.T) {
	for _, serial := range []bool{true, false} {
		for _, n := range []int{1, 5, 4096, 4097} {
			c, _ := New(4, 2)
			data := testPayload(n, int64(n))
			f := newStripeFetcher(t, c, data)
			dst := make([]byte, n)
			err := c.ReadInto(context.Background(), dst, f.fetch, ReadOpts{Serial: serial})
			if err != nil {
				t.Fatalf("serial=%v n=%d: %v", serial, n, err)
			}
			if !bytes.Equal(dst, data) {
				t.Fatalf("serial=%v n=%d: payload differs", serial, n)
			}
		}
	}
}

func TestReadIntoDegraded(t *testing.T) {
	for _, serial := range []bool{true, false} {
		// Fail up to m donors in every combination of data/parity positions.
		for _, pattern := range erasurePatterns(6, 2) {
			c, _ := New(4, 2)
			data := testPayload(2000, 99)
			f := newStripeFetcher(t, c, data)
			for _, p := range pattern {
				f.fail[p] = true
			}
			degraded := false
			dst := make([]byte, len(data))
			err := c.ReadInto(context.Background(), dst, f.fetch, ReadOpts{
				Serial:     serial,
				OnDegraded: func() { degraded = true },
			})
			failedData := 0
			for _, p := range pattern {
				if p < 4 {
					failedData++
				}
			}
			if err != nil {
				t.Fatalf("serial=%v fail=%v: %v", serial, pattern, err)
			}
			if !bytes.Equal(dst, data) {
				t.Fatalf("serial=%v fail=%v: payload differs", serial, pattern)
			}
			if failedData > 0 && !degraded {
				t.Fatalf("serial=%v fail=%v: data-shard loss did not report degraded", serial, pattern)
			}
		}
	}
}

func TestReadIntoTooManyFailures(t *testing.T) {
	for _, serial := range []bool{true, false} {
		c, _ := New(4, 2)
		data := testPayload(1024, 5)
		f := newStripeFetcher(t, c, data)
		f.fail[0], f.fail[2], f.fail[4] = true, true, true // 3 losses > m=2
		dst := make([]byte, len(data))
		err := c.ReadInto(context.Background(), dst, f.fetch, ReadOpts{Serial: serial})
		if !errors.Is(err, ErrShortShards) {
			t.Fatalf("serial=%v: err = %v, want ErrShortShards", serial, err)
		}
	}
}

// TestReadIntoHedge: one data donor stalls far past the hedge timer; the
// read must complete from parity without waiting it out, and report both the
// hedge and the degraded reconstruction.
func TestReadIntoHedge(t *testing.T) {
	c, _ := New(4, 2)
	data := testPayload(8192, 11)
	f := newStripeFetcher(t, c, data)
	f.delay[1] = 30 * time.Second // stalled donor, cancelled on completion
	hedged, degraded := false, false
	dst := make([]byte, len(data))
	start := time.Now()
	err := c.ReadInto(context.Background(), dst, f.fetch, ReadOpts{
		Hedge:      10 * time.Millisecond,
		OnHedge:    func() { hedged = true },
		OnDegraded: func() { degraded = true },
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("payload differs after hedged read")
	}
	if !hedged {
		t.Error("hedge timer did not fire")
	}
	if !degraded {
		t.Error("hedged read did not report degraded")
	}
	if elapsed > 5*time.Second {
		t.Errorf("hedged read took %v: waited for the stalled donor", elapsed)
	}
}

// TestReadIntoHedgeUnneeded: a hedge timer far above fetch latency never
// fires, and only the k data fetches are issued.
func TestReadIntoHedgeUnneeded(t *testing.T) {
	c, _ := New(4, 2)
	data := testPayload(4096, 13)
	f := newStripeFetcher(t, c, data)
	hedged := false
	dst := make([]byte, len(data))
	err := c.ReadInto(context.Background(), dst, f.fetch, ReadOpts{
		Hedge:   30 * time.Second,
		OnHedge: func() { hedged = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if hedged {
		t.Error("hedge fired although all donors were fast")
	}
	if got := f.fetches.Load(); got != 4 {
		t.Errorf("issued %d fetches, want 4 (k) on the healthy path", got)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("payload differs")
	}
}

// TestReadIntoContextCancelled: a cancelled context fails the read rather
// than hanging on donors that will never answer.
func TestReadIntoContextCancelled(t *testing.T) {
	c, _ := New(2, 1)
	data := testPayload(512, 17)
	f := newStripeFetcher(t, c, data)
	f.delay[0], f.delay[1], f.delay[2] = time.Minute, time.Minute, time.Minute
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	dst := make([]byte, len(data))
	err := c.ReadInto(ctx, dst, f.fetch, ReadOpts{Hedge: 5 * time.Millisecond})
	if err == nil {
		t.Fatal("read with all donors stalled succeeded")
	}
}
