// Package dmcache implements the paper's second killer application for
// partial memory disaggregation (§III): key-value caching over the idle
// memory of remote nodes. It is a two-tier cache — a bounded local LRU in
// front of cluster-wide disaggregated memory. Entries evicted from the
// local tier are parked in the receive pool of a peer chosen by a §IV.E
// balancing policy, and come back over one-sided reads instead of being
// lost, so a cache sized far beyond one machine's DRAM keeps behaving like
// a cache rather than like a database miss.
//
// The cache runs over any transport.Verbs attachment: the simulated RDMA
// fabric in experiments, real TCP against dmnode daemons in deployments.
package dmcache

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"godm/internal/core"
	"godm/internal/metrics"
	"godm/internal/placement"
	"godm/internal/prefetch"
	"godm/internal/trace"
	"godm/internal/transport"
)

// ErrNoPeers is returned when no remote node can hold evicted entries.
var ErrNoPeers = errors.New("dmcache: no peers available")

// Config shapes a Cache.
type Config struct {
	// LocalBytes bounds the local hot tier (values only; keys are assumed
	// comparatively small). Must be positive.
	LocalBytes int64
	// Verbs is the fabric attachment used to reach peers.
	Verbs transport.Verbs
	// Peers are the donor nodes whose receive pools absorb evictions.
	Peers []transport.NodeID
	// Balancer picks the peer for each parked entry; defaults to
	// power-of-two-choices seeded with 1.
	Balancer placement.Balancer
	// StatsEvery refreshes peers' advertised free memory every N remote
	// placements (default 64).
	StatsEvery int
	// WindowSize bounds the per-peer write-combining window used when
	// parking evicted entries (§IV.H window-based batching): up to
	// WindowSize victims bound for the same peer move as one atomic batch.
	// Defaults to 8; 1 disables batching.
	WindowSize int
	// NoCompress disables the transparent compression of parked entries.
	NoCompress bool
	// Metrics mounts the cache's instrumentation; nil means a private
	// registry nothing exports.
	Metrics *metrics.Registry
}

// Stats counts cache activity.
type Stats struct {
	LocalHits   int64
	RemoteHits  int64
	Misses      int64
	Evictions   int64 // local entries parked remotely
	RemoteBytes int64 // bytes currently parked on peers
	Dropped     int64 // evictions lost because every peer was full
	Prefetched  int64 // entries pulled back alongside a requested batch member
	// PrefetchHits counts prefetched entries later served as local hits;
	// PrefetchWaste counts those evicted again untouched. Their ratio steers
	// the adaptive read-ahead depth.
	PrefetchHits  int64
	PrefetchWaste int64
}

type entry struct {
	key   string
	value []byte
}

type remoteRef struct {
	node transport.NodeID
	size int
	// batch links entries spilled in the same write-combining window, so a
	// remote hit can prefetch the rest of its window in one span read.
	// Zero means the entry was parked alone.
	batch uint64
}

// cacheMetrics is the tier instrumentation, bound once at construction.
// Remote-hit latency uses trace.Now so simulated runs stay deterministic.
type cacheMetrics struct {
	localHits        *metrics.Counter
	remoteHits       *metrics.Counter
	misses           *metrics.Counter
	evictions        *metrics.Counter
	dropped          *metrics.Counter
	prefetches       *metrics.Counter
	prefetchHits     *metrics.Counter
	prefetchWasted   *metrics.Counter
	localBytes       *metrics.Gauge
	remoteBytes      *metrics.Gauge
	prefetchDepth    *metrics.Gauge
	remoteGetLatency *metrics.Histogram
}

func newCacheMetrics(reg *metrics.Registry) cacheMetrics {
	return cacheMetrics{
		localHits:        reg.Counter("local_hits"),
		remoteHits:       reg.Counter("remote_hits"),
		misses:           reg.Counter("misses"),
		evictions:        reg.Counter("evictions"),
		dropped:          reg.Counter("dropped"),
		prefetches:       reg.Counter("prefetches"),
		prefetchHits:     reg.Counter("prefetch_hits"),
		prefetchWasted:   reg.Counter("prefetch_wasted"),
		localBytes:       reg.Gauge("local_bytes"),
		remoteBytes:      reg.Gauge("remote_bytes"),
		prefetchDepth:    reg.Gauge("prefetch_depth"),
		remoteGetLatency: reg.Histogram("remote_get_latency"),
	}
}

// Cache is a disaggregated-memory key-value cache. It is safe for
// concurrent use from real goroutines; within a simulation drive it from
// simulation processes.
type Cache struct {
	cfg    Config
	client *core.Client

	met cacheMetrics

	mu         sync.Mutex
	lru        *list.List // front = hottest
	local      map[string]*list.Element
	localBytes int64
	remote     map[string]remoteRef
	freeBytes  map[transport.NodeID]int64
	sincePoll  int
	nextKey    uint64
	keyIDs     map[string]uint64
	nextBatch  uint64
	// batches remembers which keys were spilled together, keyed by the batch
	// id recorded in their remoteRefs.
	batches map[uint64][]string
	// depth adapts how many window siblings ride back on a remote hit:
	// doubled after a streak of prefetched entries proving useful, halved
	// whenever one is evicted again untouched.
	depth *prefetch.Depth
	// prefetchMark flags locally-resident entries that arrived as sibling
	// read-ahead and have not yet been referenced.
	prefetchMark map[string]bool
	stats        Stats
}

// New builds a cache.
func New(cfg Config) (*Cache, error) {
	if cfg.LocalBytes <= 0 {
		return nil, fmt.Errorf("dmcache: local budget %d must be positive", cfg.LocalBytes)
	}
	if cfg.Verbs == nil {
		return nil, errors.New("dmcache: nil verbs attachment")
	}
	if len(cfg.Peers) == 0 {
		return nil, ErrNoPeers
	}
	if cfg.Balancer == nil {
		cfg.Balancer = placement.NewPowerOfTwo(1)
	}
	if cfg.StatsEvery <= 0 {
		cfg.StatsEvery = 64
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 8
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry("dmcache")
	}
	var opts []core.ClientOption
	if !cfg.NoCompress {
		opts = append(opts, core.WithCompression(0))
	}
	// Read-ahead starts optimistic — the whole spill window, the prior fixed
	// behavior — and adapts from feedback: a window has at most WindowSize-1
	// siblings, so that is both the initial depth and the cap.
	sibCap := cfg.WindowSize - 1
	if sibCap < 1 {
		sibCap = 1
	}
	c := &Cache{
		met:          newCacheMetrics(reg),
		cfg:          cfg,
		client:       core.NewClient(cfg.Verbs, opts...),
		lru:          list.New(),
		local:        map[string]*list.Element{},
		remote:       map[string]remoteRef{},
		freeBytes:    map[transport.NodeID]int64{},
		keyIDs:       map[string]uint64{},
		batches:      map[uint64][]string{},
		depth:        prefetch.NewDepth(sibCap, sibCap, 4),
		prefetchMark: map[string]bool{},
	}
	c.met.prefetchDepth.Set(int64(c.depth.Get()))
	return c, nil
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// LocalLen reports the number of entries in the hot tier.
func (c *Cache) LocalLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// keyID assigns a stable wire key for a string key.
func (c *Cache) keyID(key string) uint64 {
	if id, ok := c.keyIDs[key]; ok {
		return id
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	// Mix in a counter to keep IDs unique even on hash collisions.
	c.nextKey++
	id := h.Sum64() ^ (c.nextKey << 1)
	c.keyIDs[key] = id
	return id
}

// Put stores a value. The entry lands in the local tier; older entries
// overflow to remote memory as needed.
func (c *Cache) Put(ctx context.Context, key string, value []byte) error {
	ctx, sp := trace.Start(ctx, "cache.put")
	sp.Annotate("bytes", len(value))
	defer sp.End()
	c.mu.Lock()
	defer c.mu.Unlock()
	// Drop any previous versions.
	if err := c.dropLocked(ctx, key); err != nil {
		return err
	}
	e := &entry{key: key, value: append([]byte(nil), value...)}
	c.local[key] = c.lru.PushFront(e)
	c.localBytes += int64(len(e.value))
	return c.trimLocked(ctx)
}

// Get fetches a value. Remote hits are re-admitted to the local tier.
func (c *Cache) Get(ctx context.Context, key string) ([]byte, bool, error) {
	ctx, sp := trace.Start(ctx, "cache.get")
	defer sp.End()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.local[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.LocalHits++
		c.met.localHits.Inc()
		if c.prefetchMark[key] {
			// A sibling pulled ahead of demand proved useful: credit the
			// depth controller.
			delete(c.prefetchMark, key)
			c.stats.PrefetchHits++
			c.met.prefetchHits.Inc()
			c.depth.Hit()
			c.met.prefetchDepth.Set(int64(c.depth.Get()))
		}
		sp.Annotate("tier", "local")
		val := el.Value.(*entry).value
		return append([]byte(nil), val...), true, nil
	}
	ref, ok := c.remote[key]
	if !ok {
		c.stats.Misses++
		c.met.misses.Inc()
		sp.Annotate("tier", "miss")
		return nil, false, nil
	}
	start := trace.Now(ctx)
	if ref.batch != 0 {
		if val, ok := c.prefetchBatchLocked(ctx, key, ref, start, sp); ok {
			return val, true, nil
		}
	}
	data, err := c.client.Get(ctx, ref.node, c.keyID(key))
	if err != nil {
		// The peer evicted or crashed: a miss, not an error (cache
		// semantics — the caller refills from the source of truth).
		c.forgetRemoteLocked(key, ref)
		c.stats.Misses++
		c.met.misses.Inc()
		sp.Annotate("tier", "miss")
		return nil, false, nil
	}
	_ = c.client.Delete(ctx, ref.node, c.keyID(key))
	c.forgetRemoteLocked(key, ref)
	c.stats.RemoteBytes -= int64(ref.size)
	c.stats.RemoteHits++
	c.met.remoteHits.Inc()
	c.met.remoteGetLatency.Observe(trace.Now(ctx) - start)
	sp.Annotate("tier", "remote")
	e := &entry{key: key, value: data}
	c.local[key] = c.lru.PushFront(e)
	c.localBytes += int64(len(data))
	if err := c.trimLocked(ctx); err != nil {
		return nil, false, err
	}
	return append([]byte(nil), data...), true, nil
}

// prefetchBatchLocked serves a remote hit by pulling back the requested
// entry together with up to depth of its spill-window siblings — the
// entries most likely to be wanted next (they cooled together) — in
// span-coalesced batch reads (§IV.H read-ahead). The sibling count adapts:
// prefetched entries that get referenced locally grow it back toward the
// window size, ones evicted untouched halve it, so a workload whose reuse
// pattern ignores spill adjacency degrades to single-entry fetches instead
// of churning the local tier. Only siblings that still rest on the same
// peer and fit the local budget WITHOUT evicting anything ride along; when
// the budget is too tight the requested entry alone falls back to the
// single-entry path (ok=false).
func (c *Cache) prefetchBatchLocked(ctx context.Context, key string, ref remoteRef, start time.Duration, sp *trace.Span) ([]byte, bool) {
	members := []string{key}
	total := int64(ref.size)
	limit := c.depth.Get()
	for _, k := range c.batches[ref.batch] {
		if len(members)-1 >= limit {
			break
		}
		if k == key {
			continue
		}
		r, ok := c.remote[k]
		if !ok || r.batch != ref.batch || r.node != ref.node {
			continue
		}
		if c.localBytes+total+int64(r.size) > c.cfg.LocalBytes {
			continue
		}
		members = append(members, k)
		total += int64(r.size)
	}
	if len(members) == 1 || c.localBytes+total > c.cfg.LocalBytes {
		return nil, false
	}
	ids := make([]uint64, len(members))
	for i, k := range members {
		ids[i] = c.keyID(k)
	}
	got, err := c.client.GetAll(ctx, ref.node, ids)
	if err != nil {
		return nil, false // single-entry path retries and classifies
	}
	// Migrate the window home: the remote copies are stale now.
	_ = c.client.DeleteAll(ctx, ref.node, ids)
	// Admit siblings first so the requested key ends up hottest.
	var requested []byte
	for i := len(members) - 1; i >= 0; i-- {
		k := members[i]
		data := got[ids[i]]
		r := c.remote[k]
		c.forgetRemoteLocked(k, r)
		c.stats.RemoteBytes -= int64(r.size)
		e := &entry{key: k, value: data}
		c.local[k] = c.lru.PushFront(e)
		c.localBytes += int64(len(data))
		if k == key {
			requested = data
		} else {
			c.prefetchMark[k] = true
		}
	}
	c.stats.RemoteHits++
	c.met.remoteHits.Inc()
	c.stats.Prefetched += int64(len(members) - 1)
	c.met.prefetches.Add(int64(len(members) - 1))
	c.met.remoteGetLatency.Observe(trace.Now(ctx) - start)
	c.met.localBytes.Set(c.localBytes)
	c.met.remoteBytes.Set(c.stats.RemoteBytes)
	sp.Annotate("tier", "remote")
	sp.Annotate("prefetched", len(members)-1)
	return append([]byte(nil), requested...), true
}

// forgetRemoteLocked drops the bookkeeping for a parked entry: its remote
// ref and its membership in any spill window.
func (c *Cache) forgetRemoteLocked(key string, ref remoteRef) {
	delete(c.remote, key)
	if ref.batch == 0 {
		return
	}
	keys := c.batches[ref.batch]
	for i, k := range keys {
		if k == key {
			keys = append(keys[:i], keys[i+1:]...)
			break
		}
	}
	if len(keys) == 0 {
		delete(c.batches, ref.batch)
	} else {
		c.batches[ref.batch] = keys
	}
}

// Delete removes a key from both tiers.
func (c *Cache) Delete(ctx context.Context, key string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropLocked(ctx, key)
}

func (c *Cache) dropLocked(ctx context.Context, key string) error {
	if el, ok := c.local[key]; ok {
		c.localBytes -= int64(len(el.Value.(*entry).value))
		c.lru.Remove(el)
		delete(c.local, key)
		// An explicit delete is not the prefetcher's fault: unmark silently.
		delete(c.prefetchMark, key)
	}
	if ref, ok := c.remote[key]; ok {
		c.forgetRemoteLocked(key, ref)
		c.stats.RemoteBytes -= int64(ref.size)
		return c.client.Delete(ctx, ref.node, c.keyID(key))
	}
	return nil
}

// trimLocked parks LRU entries remotely until the local tier fits. Victims
// are gathered first, grouped by their target peer, and spilled in windows
// of up to cfg.WindowSize entries (§IV.H write combining): each window is
// one batched alloc round trip plus span-coalesced one-sided writes instead
// of two round trips per entry, and its members stay linked for batch
// read-ahead on the way back.
func (c *Cache) trimLocked(ctx context.Context) error {
	var victims []*entry
	for c.localBytes > c.cfg.LocalBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.local, e.key)
		c.localBytes -= int64(len(e.value))
		if c.prefetchMark[e.key] {
			// A prefetched sibling cycled out untouched: the read-ahead was
			// wasted work, so the depth controller backs off.
			delete(c.prefetchMark, e.key)
			c.stats.PrefetchWaste++
			c.met.prefetchWasted.Inc()
			c.depth.Waste()
			c.met.prefetchDepth.Set(int64(c.depth.Get()))
		}
		victims = append(victims, e)
	}
	groups := map[transport.NodeID][]*entry{}
	var order []transport.NodeID
	for _, e := range victims {
		node, err := c.pickPeer(ctx, len(e.value))
		if err != nil {
			c.stats.Dropped++
			c.met.dropped.Inc()
			continue // cache semantics: losing an entry is legal
		}
		if _, ok := groups[node]; !ok {
			order = append(order, node)
		}
		groups[node] = append(groups[node], e)
	}
	for _, node := range order {
		g := groups[node]
		for len(g) > 0 {
			n := c.cfg.WindowSize
			if n > len(g) {
				n = len(g)
			}
			c.spillWindowLocked(ctx, node, g[:n])
			g = g[n:]
		}
	}
	c.met.localBytes.Set(c.localBytes)
	c.met.remoteBytes.Set(c.stats.RemoteBytes)
	return nil
}

// spillWindowLocked parks one window of victims on node — as an atomic
// batch when the window has more than one entry, falling back to per-entry
// puts when the batch fails as a unit (so one poisoned entry cannot drop
// its whole window).
func (c *Cache) spillWindowLocked(ctx context.Context, node transport.NodeID, window []*entry) {
	if len(window) > 1 {
		batch := make([]core.Entry, len(window))
		for i, e := range window {
			batch[i] = core.Entry{Key: c.keyID(e.key), Data: e.value}
		}
		if err := c.client.PutAll(ctx, node, batch); err == nil {
			c.nextBatch++
			id := c.nextBatch
			keys := make([]string, len(window))
			for i, e := range window {
				keys[i] = e.key
				c.remote[e.key] = remoteRef{node: node, size: len(e.value), batch: id}
				c.stats.RemoteBytes += int64(len(e.value))
				c.stats.Evictions++
				c.met.evictions.Inc()
			}
			c.batches[id] = keys
			return
		}
	}
	for _, e := range window {
		if err := c.client.Put(ctx, node, c.keyID(e.key), e.value); err != nil {
			c.stats.Dropped++
			c.met.dropped.Inc()
			continue
		}
		c.remote[e.key] = remoteRef{node: node, size: len(e.value)}
		c.stats.RemoteBytes += int64(len(e.value))
		c.stats.Evictions++
		c.met.evictions.Inc()
	}
}

// pickPeer chooses a donor by advertised free memory, polling stats lazily.
func (c *Cache) pickPeer(ctx context.Context, need int) (transport.NodeID, error) {
	if c.sincePoll == 0 || len(c.freeBytes) == 0 {
		for _, p := range c.cfg.Peers {
			free, err := c.client.Stats(ctx, p)
			if err != nil {
				free = 0 // unreachable peers advertise nothing
			}
			c.freeBytes[p] = free
		}
	}
	c.sincePoll = (c.sincePoll + 1) % c.cfg.StatsEvery
	cands := make([]placement.Candidate, 0, len(c.cfg.Peers))
	for _, p := range c.cfg.Peers {
		if c.freeBytes[p] >= int64(need) {
			cands = append(cands, placement.Candidate{Node: placement.NodeID(p), FreeBytes: c.freeBytes[p]})
		}
	}
	if len(cands) == 0 {
		return 0, ErrNoPeers
	}
	picked, err := c.cfg.Balancer.Pick(cands, 1)
	if err != nil {
		return 0, err
	}
	node := transport.NodeID(picked[0])
	c.freeBytes[node] -= int64(need)
	return node, nil
}
