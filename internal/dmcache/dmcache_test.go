package dmcache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"godm/internal/cluster"
	"godm/internal/core"
	"godm/internal/des"
	"godm/internal/simnet"
	"godm/internal/tcpnet"
	"godm/internal/transport"
)

// rig builds one client endpoint plus donor nodes on a simulated fabric.
type rig struct {
	env      *des.Env
	fabric   *simnet.Fabric
	clientEP *simnet.Endpoint
	peers    []transport.NodeID
	nodes    []*core.Node
}

func newRig(t *testing.T, donors int, recvBytes int64) *rig {
	t.Helper()
	env := des.NewEnv()
	fabric := simnet.New(env, simnet.DefaultParams())
	dir, err := cluster.NewDirectory(cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{env: env, fabric: fabric}
	clientEP, err := fabric.Attach(100)
	if err != nil {
		t.Fatal(err)
	}
	r.clientEP = clientEP
	for i := 1; i <= donors; i++ {
		ep, err := fabric.Attach(transport.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		node, err := core.NewNode(core.Config{
			ID:                transport.NodeID(i),
			SharedPoolBytes:   1 << 20,
			SendPoolBytes:     1 << 20,
			RecvPoolBytes:     recvBytes,
			SlabSize:          1 << 20,
			ReplicationFactor: 1,
			// Donors run sharded receive pools so the cache's remote path is
			// covered with the production lock layout.
			PoolShards: 4,
		}, ep, dir)
		if err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, node)
		r.peers = append(r.peers, transport.NodeID(i))
	}
	return r
}

func (r *rig) newCache(t *testing.T, localBytes int64) *Cache {
	t.Helper()
	c, err := New(Config{LocalBytes: localBytes, Verbs: r.clientEP, Peers: r.peers})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func (r *rig) run(t *testing.T, body func(ctx context.Context)) {
	t.Helper()
	r.env.Go("client", func(p *des.Proc) {
		body(des.NewContext(context.Background(), p))
	})
	if err := r.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	r := newRig(t, 1, 1<<20)
	if _, err := New(Config{LocalBytes: 0, Verbs: r.clientEP, Peers: r.peers}); err == nil {
		t.Fatal("expected error for zero budget")
	}
	if _, err := New(Config{LocalBytes: 1, Peers: r.peers}); err == nil {
		t.Fatal("expected error for nil verbs")
	}
	if _, err := New(Config{LocalBytes: 1, Verbs: r.clientEP}); !errors.Is(err, ErrNoPeers) {
		t.Fatal("expected ErrNoPeers")
	}
}

func TestLocalHit(t *testing.T) {
	r := newRig(t, 2, 1<<20)
	c := r.newCache(t, 1<<20)
	r.run(t, func(ctx context.Context) {
		if err := c.Put(ctx, "k", []byte("v")); err != nil {
			t.Errorf("Put: %v", err)
			return
		}
		got, ok, err := c.Get(ctx, "k")
		if err != nil || !ok || string(got) != "v" {
			t.Errorf("Get = %q %v %v", got, ok, err)
		}
	})
	st := c.Stats()
	if st.LocalHits != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOverflowParksRemotelyAndComesBack(t *testing.T) {
	r := newRig(t, 3, 4<<20)
	c := r.newCache(t, 16<<10) // 16 KiB local: 4 values of 4 KiB
	r.run(t, func(ctx context.Context) {
		val := bytes.Repeat([]byte{0xAA}, 4096)
		for i := 0; i < 16; i++ {
			val[0] = byte(i)
			if err := c.Put(ctx, fmt.Sprintf("key-%d", i), val); err != nil {
				t.Errorf("Put %d: %v", i, err)
				return
			}
		}
		if c.LocalLen() != 4 {
			t.Errorf("LocalLen = %d, want 4", c.LocalLen())
		}
		// The oldest entries were parked remotely and are still readable.
		got, ok, err := c.Get(ctx, "key-0")
		if err != nil || !ok {
			t.Errorf("remote get = %v %v", ok, err)
			return
		}
		if got[0] != 0 || len(got) != 4096 {
			t.Error("remote value corrupted")
		}
	})
	st := c.Stats()
	if st.Evictions < 12 {
		t.Fatalf("Evictions = %d, want >= 12", st.Evictions)
	}
	if st.RemoteHits != 1 {
		t.Fatalf("RemoteHits = %d, want 1", st.RemoteHits)
	}
	if st.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0", st.Dropped)
	}
	// Remote bytes live on the donors.
	var live int64
	for _, n := range r.nodes {
		live += n.RecvPool().Stats().LiveBytes
	}
	if live == 0 {
		t.Fatal("no bytes parked on donors")
	}
}

func TestMissOnUnknownKey(t *testing.T) {
	r := newRig(t, 1, 1<<20)
	c := r.newCache(t, 1<<20)
	r.run(t, func(ctx context.Context) {
		_, ok, err := c.Get(ctx, "ghost")
		if err != nil || ok {
			t.Errorf("Get ghost = %v, %v", ok, err)
		}
	})
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("Misses = %d", st.Misses)
	}
}

func TestDeleteBothTiers(t *testing.T) {
	r := newRig(t, 2, 4<<20)
	c := r.newCache(t, 4096)
	r.run(t, func(ctx context.Context) {
		big := make([]byte, 4096)
		if err := c.Put(ctx, "a", big); err != nil {
			t.Errorf("Put a: %v", err)
			return
		}
		if err := c.Put(ctx, "b", big); err != nil { // evicts "a" remotely
			t.Errorf("Put b: %v", err)
			return
		}
		if err := c.Delete(ctx, "a"); err != nil {
			t.Errorf("Delete a: %v", err)
			return
		}
		if err := c.Delete(ctx, "b"); err != nil {
			t.Errorf("Delete b: %v", err)
			return
		}
		for _, k := range []string{"a", "b"} {
			if _, ok, _ := c.Get(ctx, k); ok {
				t.Errorf("%s still present after delete", k)
			}
		}
	})
	for _, n := range r.nodes {
		if live := n.RecvPool().Stats().LiveBytes; live != 0 {
			t.Fatalf("node %d still holds %d bytes", n.ID(), live)
		}
	}
}

func TestPeerCrashBecomesMiss(t *testing.T) {
	r := newRig(t, 1, 4<<20)
	c := r.newCache(t, 4096)
	r.run(t, func(ctx context.Context) {
		big := make([]byte, 4096)
		if err := c.Put(ctx, "a", big); err != nil {
			t.Errorf("Put a: %v", err)
			return
		}
		if err := c.Put(ctx, "b", big); err != nil { // "a" parked on node 1
			t.Errorf("Put b: %v", err)
			return
		}
		r.fabric.Partition(100, 1)
		_, ok, err := c.Get(ctx, "a")
		if err != nil {
			t.Errorf("Get after crash errored: %v", err)
			return
		}
		if ok {
			t.Error("entry survived a partitioned peer without replication")
		}
	})
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", st.Misses)
	}
}

func TestAllPeersFullDropsEntries(t *testing.T) {
	r := newRig(t, 1, 1<<20) // single donor with a 1 MiB pool
	c := r.newCache(t, 8<<10)
	r.run(t, func(ctx context.Context) {
		// Incompressible values, so transparent compression cannot shrink
		// them into the donor and the pool genuinely fills.
		val := make([]byte, 8<<10)
		s := uint64(0x9E3779B97F4A7C15)
		for i := range val {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			val[i] = byte(s)
		}
		for i := 0; i < 300; i++ { // ~2.4 MiB of evictions into 1 MiB
			if err := c.Put(ctx, fmt.Sprintf("k%d", i), val); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
		}
	})
	if st := c.Stats(); st.Dropped == 0 {
		t.Fatalf("expected drops once the donor filled: %+v", st)
	}
}

func TestOverTCPFabric(t *testing.T) {
	// The same cache against a real TCP donor.
	donorEP, err := tcpnet.Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer donorEP.Close()
	dir, err := cluster.NewDirectory(cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewNode(core.Config{
		ID: 1, SharedPoolBytes: 1 << 20, SendPoolBytes: 1 << 20,
		RecvPoolBytes: 4 << 20, SlabSize: 1 << 20, ReplicationFactor: 1,
	}, donorEP, dir); err != nil {
		t.Fatal(err)
	}
	clientEP, err := tcpnet.Listen(100, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer clientEP.Close()
	clientEP.AddPeer(1, donorEP.Addr())

	c, err := New(Config{LocalBytes: 4096, Verbs: clientEP, Peers: []transport.NodeID{1}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	big := bytes.Repeat([]byte{7}, 4096)
	if err := c.Put(ctx, "a", big); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(ctx, "b", big); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(ctx, "a") // remote hit over TCP
	if err != nil || !ok || !bytes.Equal(got, big) {
		t.Fatalf("Get = %v %v", ok, err)
	}
	if st := c.Stats(); st.RemoteHits != 1 {
		t.Fatalf("RemoteHits = %d", st.RemoteHits)
	}
}

// TestBatchSpillAndPrefetch drives the §IV.H window path end to end: one
// oversized admission evicts a whole window of siblings in a single batched
// spill, and a later hit on any of them prefetches the rest of the window
// back in one span read.
func TestBatchSpillAndPrefetch(t *testing.T) {
	r := newRig(t, 1, 4<<20)
	c, err := New(Config{LocalBytes: 16 << 10, Verbs: r.clientEP, Peers: r.peers, WindowSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	val := func(b byte) []byte { return bytes.Repeat([]byte{b}, 4<<10) }
	r.run(t, func(ctx context.Context) {
		for i, k := range []string{"a", "b", "c", "d"} {
			if err := c.Put(ctx, k, val(byte(i+1))); err != nil {
				t.Errorf("Put %s: %v", k, err)
				return
			}
		}
		// A 16 KiB admission displaces all four entries at once: they spill
		// to the donor as one write-combined window.
		if err := c.Put(ctx, "big", make([]byte, 16<<10)); err != nil {
			t.Errorf("Put big: %v", err)
			return
		}
		if st := c.Stats(); st.Evictions != 4 || st.Dropped != 0 {
			t.Errorf("after spill: %+v", st)
		}
		// Make room, then touch one window member: its three siblings must
		// ride back with it.
		if err := c.Delete(ctx, "big"); err != nil {
			t.Errorf("Delete big: %v", err)
			return
		}
		got, ok, err := c.Get(ctx, "b")
		if err != nil || !ok || !bytes.Equal(got, val(2)) {
			t.Errorf("Get b = %d bytes, %v, %v", len(got), ok, err)
			return
		}
		st := c.Stats()
		if st.RemoteHits != 1 || st.Prefetched != 3 {
			t.Errorf("after prefetch: %+v", st)
		}
		if st.RemoteBytes != 0 {
			t.Errorf("RemoteBytes = %d, want 0 (window migrated home)", st.RemoteBytes)
		}
		// The siblings are local now: no further remote traffic.
		for i, k := range []string{"a", "c", "d"} {
			got, ok, err := c.Get(ctx, k)
			want := []byte{1, 3, 4}[i]
			if err != nil || !ok || !bytes.Equal(got, val(want)) {
				t.Errorf("Get %s = %d bytes, %v, %v", k, len(got), ok, err)
			}
		}
		if st := c.Stats(); st.LocalHits != 3 || st.RemoteHits != 1 {
			t.Errorf("after sibling gets: %+v", st)
		}
	})
	// Nothing left parked on the donor.
	if st := r.nodes[0].RecvPool().Stats(); st.LiveBytes != 0 {
		t.Fatalf("donor LiveBytes = %d, want 0", st.LiveBytes)
	}
}

// TestPrefetchSkippedWhenBudgetTight: a remote hit whose window no longer
// fits the local tier must fall back to fetching just the requested entry.
func TestPrefetchSkippedWhenBudgetTight(t *testing.T) {
	r := newRig(t, 1, 4<<20)
	c, err := New(Config{LocalBytes: 16 << 10, Verbs: r.clientEP, Peers: r.peers, WindowSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	val := func(b byte) []byte { return bytes.Repeat([]byte{b}, 4<<10) }
	r.run(t, func(ctx context.Context) {
		for i, k := range []string{"a", "b", "c", "d"} {
			if err := c.Put(ctx, k, val(byte(i+1))); err != nil {
				t.Errorf("Put %s: %v", k, err)
				return
			}
		}
		if err := c.Put(ctx, "big", make([]byte, 16<<10)); err != nil {
			t.Errorf("Put big: %v", err)
			return
		}
		// Local tier still holds "big": the window cannot come home whole.
		got, ok, err := c.Get(ctx, "b")
		if err != nil || !ok || !bytes.Equal(got, val(2)) {
			t.Errorf("Get b = %d bytes, %v, %v", len(got), ok, err)
			return
		}
		st := c.Stats()
		if st.RemoteHits != 1 || st.Prefetched != 0 {
			t.Errorf("tight-budget get: %+v", st)
		}
	})
}

// TestAdaptiveReadAheadBacksOff: when prefetched siblings cycle out of the
// local tier untouched, the read-ahead depth halves, so the next remote hit
// pulls fewer of them; referencing a prefetched entry counts as a hit.
func TestAdaptiveReadAheadBacksOff(t *testing.T) {
	r := newRig(t, 1, 4<<20)
	c, err := New(Config{LocalBytes: 16 << 10, Verbs: r.clientEP, Peers: r.peers, WindowSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	val := func(b byte) []byte { return bytes.Repeat([]byte{b}, 4<<10) }
	r.run(t, func(ctx context.Context) {
		for i, k := range []string{"a", "b", "c", "d"} {
			if err := c.Put(ctx, k, val(byte(i+1))); err != nil {
				t.Errorf("Put %s: %v", k, err)
				return
			}
		}
		if err := c.Put(ctx, "big", make([]byte, 16<<10)); err != nil {
			t.Errorf("Put big: %v", err)
			return
		}
		if err := c.Delete(ctx, "big"); err != nil {
			t.Errorf("Delete big: %v", err)
			return
		}
		// Full-window read-ahead: three siblings ride back with "b".
		if _, ok, err := c.Get(ctx, "b"); err != nil || !ok {
			t.Errorf("Get b: ok=%v err=%v", ok, err)
			return
		}
		if st := c.Stats(); st.Prefetched != 3 {
			t.Errorf("first hit prefetched %d, want 3", st.Prefetched)
			return
		}
		// Evict the whole set untouched: every prefetched sibling is wasted
		// work and the depth controller collapses to 1.
		if err := c.Put(ctx, "big", make([]byte, 16<<10)); err != nil {
			t.Errorf("Put big again: %v", err)
			return
		}
		st := c.Stats()
		if st.PrefetchWaste != 3 {
			t.Errorf("PrefetchWaste = %d, want 3", st.PrefetchWaste)
		}
		if d := c.depth.Get(); d != 1 {
			t.Errorf("depth after waste = %d, want 1", d)
		}
		// The next remote hit pulls at most one sibling.
		if err := c.Delete(ctx, "big"); err != nil {
			t.Errorf("Delete big: %v", err)
			return
		}
		if _, ok, err := c.Get(ctx, "b"); err != nil || !ok {
			t.Errorf("Get b again: ok=%v err=%v", ok, err)
			return
		}
		st = c.Stats()
		if got := st.Prefetched; got != 4 {
			t.Errorf("Prefetched after backed-off hit = %d, want 4 (3 then 1)", got)
		}
		// Touching the surviving prefetched sibling credits a hit.
		before := st.PrefetchHits
		for _, k := range []string{"a", "c", "d"} {
			_, _, _ = c.Get(ctx, k)
		}
		if st = c.Stats(); st.PrefetchHits <= before {
			t.Errorf("PrefetchHits did not advance: %+v", st)
		}
	})
}
