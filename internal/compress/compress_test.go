package compress

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGranularityValidate(t *testing.T) {
	tests := []struct {
		name    string
		g       Granularity
		wantErr bool
	}{
		{"two", Two, false},
		{"four", Four, false},
		{"empty", Granularity{}, true},
		{"not ascending", Granularity{1024, 512, 4096}, true},
		{"duplicate", Granularity{2048, 2048, 4096}, true},
		{"missing page class", Granularity{512, 1024}, true},
		{"negative", Granularity{-1, 4096}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.g.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestClassFor(t *testing.T) {
	tests := []struct {
		g    Granularity
		n    int
		want int
	}{
		{Four, 0, 512},
		{Four, 512, 512},
		{Four, 513, 1024},
		{Four, 1024, 1024},
		{Four, 2000, 2048},
		{Four, 4096, 4096},
		{Four, 9999, 4096},
		{Two, 100, 2048},
		{Two, 2049, 4096},
	}
	for _, tt := range tests {
		if got := tt.g.ClassFor(tt.n); got != tt.want {
			t.Errorf("ClassFor(%d) on %v = %d, want %d", tt.n, tt.g, got, tt.want)
		}
	}
}

func TestCodecRejectsBadGranularity(t *testing.T) {
	if _, err := NewCodec(Granularity{3, 5}); err == nil {
		t.Fatal("expected error for invalid granularity")
	}
}

func TestCompressRejectsWrongPageSize(t *testing.T) {
	c, err := NewCodec(Four)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compress(make([]byte, 100)); err == nil {
		t.Fatal("expected error for short page")
	}
}

func TestRoundTripZeroPage(t *testing.T) {
	c, _ := NewCodec(Four)
	page := make([]byte, PageSize)
	comp, err := c.Compress(page)
	if err != nil {
		t.Fatal(err)
	}
	if comp.StoredSize != 512 {
		t.Fatalf("zero page stored size = %d, want 512 (best class)", comp.StoredSize)
	}
	dst := make([]byte, PageSize)
	if err := c.Decompress(comp, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page, dst) {
		t.Fatal("round trip mismatch")
	}
}

func TestRoundTripRandomPageStoredRaw(t *testing.T) {
	c, _ := NewCodec(Four)
	rng := rand.New(rand.NewSource(1))
	page := GeneratePage(rng, 1)
	comp, err := c.Compress(page)
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Raw || comp.StoredSize != PageSize {
		t.Fatalf("random page: raw=%v stored=%d, want raw 4096", comp.Raw, comp.StoredSize)
	}
	dst := make([]byte, PageSize)
	if err := c.Decompress(comp, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page, dst) {
		t.Fatal("round trip mismatch")
	}
}

func TestRoundTripProperty(t *testing.T) {
	c, _ := NewCodec(Four)
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64, ratioBits uint8) bool {
		ratio := 1 + float64(ratioBits)/32 // 1..~9
		pr := rand.New(rand.NewSource(seed))
		page := GeneratePage(pr, ratio)
		comp, err := c.Compress(page)
		if err != nil {
			return false
		}
		dst := make([]byte, PageSize)
		if err := c.Decompress(comp, dst); err != nil {
			return false
		}
		return bytes.Equal(page, dst)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStoredSizeMonotoneInCompressibility(t *testing.T) {
	c, _ := NewCodec(Four)
	rng := rand.New(rand.NewSource(7))
	prev := PageSize + 1
	for _, ratio := range []float64{1, 1.3, 2, 3, 4, 8} {
		// Average over several pages to smooth chunk-boundary noise.
		total := 0
		for i := 0; i < 8; i++ {
			comp, err := c.Compress(GeneratePage(rng, ratio))
			if err != nil {
				t.Fatal(err)
			}
			total += comp.StoredSize
		}
		avg := total / 8
		if avg > prev {
			t.Fatalf("avg stored size %d at ratio %v exceeds previous %d", avg, ratio, prev)
		}
		prev = avg
	}
}

func TestGeneratePageHitsTargetRatio(t *testing.T) {
	c, _ := NewCodec(Four)
	rng := rand.New(rand.NewSource(3))
	for _, ratio := range []float64{2, 4} {
		var raw, stored int64
		for i := 0; i < 32; i++ {
			comp, err := c.Compress(GeneratePage(rng, ratio))
			if err != nil {
				t.Fatal(err)
			}
			raw += PageSize
			stored += int64(comp.StoredSize)
		}
		got := Ratio(raw, stored)
		if got < ratio*0.5 || got > ratio*1.8 {
			t.Fatalf("target ratio %v achieved %v, outside tolerance", ratio, got)
		}
	}
}

func TestFourGranularityBeatsTwo(t *testing.T) {
	c4, _ := NewCodec(Four)
	c2, _ := NewCodec(Two)
	rng := rand.New(rand.NewSource(9))
	var raw, stored4, stored2 int64
	for i := 0; i < 64; i++ {
		page := GeneratePage(rng, 6) // compresses below 1 KB: only Four has a class there
		p4, err := c4.Compress(page)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := c2.Compress(page)
		if err != nil {
			t.Fatal(err)
		}
		raw += PageSize
		stored4 += int64(p4.StoredSize)
		stored2 += int64(p2.StoredSize)
	}
	if Ratio(raw, stored4) <= Ratio(raw, stored2) {
		t.Fatalf("4-granularity ratio %.2f not better than 2-granularity %.2f",
			Ratio(raw, stored4), Ratio(raw, stored2))
	}
}

func TestZbudStoredSize(t *testing.T) {
	tests := []struct{ in, want int }{
		{100, 2048},
		{2048, 2048},
		{2049, 4096},
		{4096, 4096},
	}
	for _, tt := range tests {
		if got := ZbudStoredSize(tt.in); got != tt.want {
			t.Errorf("ZbudStoredSize(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(8192, 2048); got != 4 {
		t.Fatalf("Ratio = %v, want 4", got)
	}
	if got := Ratio(100, 0); got != 0 {
		t.Fatalf("Ratio with zero stored = %v, want 0", got)
	}
}

func TestModelStoredSize(t *testing.T) {
	m, err := NewModel(Four)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		ratio float64
		want  int
	}{
		{0.5, 4096},
		{1, 4096},
		{1.5, 4096}, // 2731 bytes -> 4096 class
		{2, 2048},
		{4, 1024},
		{8, 512},
		{100, 512},
	}
	for _, tt := range tests {
		if got := m.StoredSize(tt.ratio); got != tt.want {
			t.Errorf("StoredSize(%v) = %d, want %d", tt.ratio, got, tt.want)
		}
	}
}

func TestModelMatchesCodecOnSyntheticPages(t *testing.T) {
	m, _ := NewModel(Four)
	c, _ := NewCodec(Four)
	rng := rand.New(rand.NewSource(11))
	for _, ratio := range []float64{2, 4, 8} {
		var codecStored, modelStored int64
		for i := 0; i < 32; i++ {
			comp, err := c.Compress(GeneratePage(rng, ratio))
			if err != nil {
				t.Fatal(err)
			}
			codecStored += int64(comp.StoredSize)
			modelStored += int64(m.StoredSize(ratio))
		}
		// The model should be within 2x of the real codec on synthetic pages.
		lo, hi := modelStored/2, modelStored*2
		if codecStored < lo || codecStored > hi {
			t.Fatalf("ratio %v: codec stored %d, model %d — outside 2x band", ratio, codecStored, modelStored)
		}
	}
}

func TestDecompressCorruptPayload(t *testing.T) {
	c, _ := NewCodec(Four)
	dst := make([]byte, PageSize)
	err := c.Decompress(Compressed{Data: []byte{1, 2, 3}, StoredSize: 512}, dst)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestDecompressRawWrongLength(t *testing.T) {
	c, _ := NewCodec(Four)
	dst := make([]byte, PageSize)
	err := c.Decompress(Compressed{Data: []byte{1}, StoredSize: PageSize, Raw: true}, dst)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestDecompressWrongDstSize(t *testing.T) {
	c, _ := NewCodec(Four)
	comp, _ := c.Compress(make([]byte, PageSize))
	if err := c.Decompress(comp, make([]byte, 10)); err == nil {
		t.Fatal("expected error for short dst")
	}
}

func BenchmarkCompressZeroPage(b *testing.B) {
	c, _ := NewCodec(Four)
	page := make([]byte, PageSize)
	b.SetBytes(PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(page); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressHalfCompressible(b *testing.B) {
	c, _ := NewCodec(Four)
	page := GeneratePage(rand.New(rand.NewSource(1)), 2)
	b.SetBytes(PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(page); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	c, _ := NewCodec(Four)
	comp, _ := c.Compress(GeneratePage(rand.New(rand.NewSource(1)), 2))
	dst := make([]byte, PageSize)
	b.SetBytes(PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Decompress(comp, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEntryRoundTrip(t *testing.T) {
	c, _ := NewCodec(Four)
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 100, 512, 4096, 8192, 70000} {
		// Compressible payload: repeated runs.
		data := bytes.Repeat([]byte("disaggregate "), n/13+1)[:n]
		payload, ok := c.CompressEntry(data)
		if n >= 64 && !ok {
			t.Fatalf("len %d: repetitive entry did not compress", n)
		}
		if ok {
			if len(payload) >= n {
				t.Fatalf("len %d: payload %d not smaller", n, len(payload))
			}
			back, err := DecompressEntry(payload, n)
			if err != nil {
				t.Fatalf("len %d: %v", n, err)
			}
			if !bytes.Equal(back, data) {
				t.Fatalf("len %d: round trip mismatch", n)
			}
		}
		// Incompressible payload must be refused rather than inflated.
		rnd := make([]byte, n)
		rng.Read(rnd)
		if _, ok := c.CompressEntry(rnd); ok && n < 512 {
			t.Fatalf("len %d: random entry claimed compressible", n)
		}
	}
	if _, ok := c.CompressEntry(nil); ok {
		t.Fatal("empty entry claimed compressible")
	}
}

func TestDecompressEntryRejectsCorrupt(t *testing.T) {
	c, _ := NewCodec(Four)
	data := bytes.Repeat([]byte("x"), 4096)
	payload, ok := c.CompressEntry(data)
	if !ok {
		t.Fatal("setup: run of x did not compress")
	}
	if _, err := DecompressEntry(payload, len(data)+1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong rawLen err = %v, want ErrCorrupt", err)
	}
	if _, err := DecompressEntry(payload[:len(payload)/2], len(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated payload err = %v, want ErrCorrupt", err)
	}
}

func TestEntryClassFor(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 512}, {512, 512}, {513, 1024}, {4096, 4096}, {4097, 4097}, {70000, 70000},
	}
	for _, tt := range tests {
		if got := Four.EntryClassFor(tt.n); got != tt.want {
			t.Errorf("EntryClassFor(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
	if got := Two.EntryClassFor(100); got != 2048 {
		t.Errorf("Two.EntryClassFor(100) = %d, want 2048", got)
	}
}

// TestDecompressZeroAlloc pins the pooled-inflater contract: steady-state
// page decompression and entry decompression into a caller buffer stay
// within a tiny allocation budget. Literal zero is out of reach with stdlib
// flate — huffmanDecoder.init rebuilds dynamic-Huffman link tables for every
// block (~230 B for a 4 KB page) — but pooling eliminates the window, reader
// state, and output buffer that dominate the unpooled path (~40 KB/op).
func TestDecompressZeroAlloc(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	c, err := NewCodec(Four)
	if err != nil {
		t.Fatal(err)
	}
	page := GeneratePage(rand.New(rand.NewSource(7)), 3.0)
	comp, err := c.Compress(page)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Raw {
		t.Fatal("expected a compressible page")
	}
	dst := make([]byte, PageSize)
	// Warm the pool before measuring.
	if err := c.Decompress(comp, dst); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := c.Decompress(comp, dst); err != nil {
			t.Fatal(err)
		}
	}); allocs > 8 {
		t.Errorf("Decompress allocates %.1f objects/op, budget 8 (stdlib Huffman tables only)", allocs)
	}
	if !bytes.Equal(dst, page) {
		t.Fatal("round trip mismatch")
	}

	entry := bytes.Repeat([]byte("entry payload "), 100)
	payload, ok := c.CompressEntry(entry)
	if !ok {
		t.Fatal("expected compressible entry")
	}
	edst := make([]byte, len(entry))
	if err := DecompressEntryInto(edst, payload); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := DecompressEntryInto(edst, payload); err != nil {
			t.Fatal(err)
		}
	}); allocs > 8 {
		t.Errorf("DecompressEntryInto allocates %.1f objects/op, budget 8 (stdlib Huffman tables only)", allocs)
	}
	if !bytes.Equal(edst, entry) {
		t.Fatal("entry round trip mismatch")
	}
}
