// Package compress implements FastSwap-style page compression with
// size-class granularities (§IV.H of the paper).
//
// FastSwap compresses 4 KB pages and bins the compressed payload into fixed
// size classes before parking it in disaggregated memory. The paper evaluates
// two policies: 2-granularity (2 KB, 4 KB) and 4-granularity (512 B, 1 KB,
// 2 KB, 4 KB), against Zswap, whose zbud allocator stores at most two
// compressed pages per physical page (an effective ratio cap of 2).
//
// The package offers a real flate-backed Codec used by the library's data
// plane and by the Figure 3 experiment, plus a Model codec that predicts
// stored sizes from a known compressibility ratio so large-scale simulations
// avoid running deflate on billions of synthetic pages.
package compress

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
)

// PageSize is the unit of swap-out and compression: a 4 KB page.
const PageSize = 4096

// ErrCorrupt is returned when a compressed payload fails to decompress back
// to a full page.
var ErrCorrupt = errors.New("compress: corrupt compressed page")

// Granularity is an ascending list of size classes. The final class must be
// PageSize, which doubles as the "store uncompressed" class.
type Granularity []int

// Standard granularities from the paper.
var (
	// Two is FastSwap's 2-granularity policy: 2 KB and 4 KB classes.
	Two = Granularity{2048, 4096}
	// Four is FastSwap's 4-granularity policy: 512 B, 1 KB, 2 KB, 4 KB.
	Four = Granularity{512, 1024, 2048, 4096}
)

// Validate checks that the granularity is non-empty, strictly ascending, and
// terminates at PageSize.
func (g Granularity) Validate() error {
	if len(g) == 0 {
		return errors.New("compress: empty granularity")
	}
	for i, c := range g {
		if c <= 0 {
			return fmt.Errorf("compress: non-positive class %d", c)
		}
		if i > 0 && c <= g[i-1] {
			return fmt.Errorf("compress: classes not strictly ascending at %d", c)
		}
	}
	if g[len(g)-1] != PageSize {
		return fmt.Errorf("compress: final class %d != PageSize", g[len(g)-1])
	}
	return nil
}

// ClassFor returns the smallest class that fits n compressed bytes. Payloads
// larger than every class land in the final (PageSize) class, meaning the
// page is stored uncompressed.
func (g Granularity) ClassFor(n int) int {
	for _, c := range g {
		if n <= c {
			return c
		}
	}
	return g[len(g)-1]
}

// Compressed is one page after compression and size-class binning.
type Compressed struct {
	// Data is the deflate payload, or the raw page when incompressible.
	Data []byte
	// StoredSize is the size class the payload occupies in the pool.
	StoredSize int
	// Raw reports whether Data holds the uncompressed page verbatim.
	Raw bool
}

// Codec compresses pages with deflate and bins them by a Granularity. It is
// safe for concurrent use.
type Codec struct {
	gran Granularity
	wp   sync.Pool // *flate.Writer
}

// NewCodec returns a deflate codec using granularity g.
func NewCodec(g Granularity) (*Codec, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Codec{gran: g}, nil
}

// Granularity returns the codec's size classes.
func (c *Codec) Granularity() Granularity { return c.gran }

// Compress deflates a PageSize page and bins it. Pages whose compressed form
// would not fit below the top class are stored raw.
func (c *Codec) Compress(page []byte) (Compressed, error) {
	if len(page) != PageSize {
		return Compressed{}, fmt.Errorf("compress: page length %d != %d", len(page), PageSize)
	}
	var buf bytes.Buffer
	w, _ := c.writer(&buf)
	if _, err := w.Write(page); err != nil {
		return Compressed{}, fmt.Errorf("compress: deflate write: %w", err)
	}
	if err := w.Close(); err != nil {
		return Compressed{}, fmt.Errorf("compress: deflate close: %w", err)
	}
	c.wp.Put(w)
	payload := buf.Bytes()
	class := c.gran.ClassFor(len(payload))
	if class >= PageSize || len(payload) >= PageSize {
		raw := make([]byte, PageSize)
		copy(raw, page)
		return Compressed{Data: raw, StoredSize: PageSize, Raw: true}, nil
	}
	return Compressed{Data: payload, StoredSize: class}, nil
}

func (c *Codec) writer(buf *bytes.Buffer) (*flate.Writer, error) {
	if v := c.wp.Get(); v != nil {
		w := v.(*flate.Writer)
		w.Reset(buf)
		return w, nil
	}
	return flate.NewWriter(buf, flate.BestSpeed)
}

// inflater is a pooled decompressor: a reusable bytes.Reader feeding a
// flate reader whose 32 KB sliding window survives Reset. The window, the
// source reader, and the struct itself all come back from the pool; the only
// steady-state allocation left is stdlib flate re-deriving dynamic-Huffman
// link tables per block inside huffmanDecoder.init (~230 B for a 4 KB page,
// versus ~40 KB/op without pooling).
type inflater struct {
	src bytes.Reader
	fr  io.ReadCloser
}

var inflaters = sync.Pool{New: func() any {
	inf := &inflater{}
	inf.fr = flate.NewReader(&inf.src)
	return inf
}}

// inflate decompresses payload into exactly len(dst) bytes using a pooled
// flate reader, failing with an ErrCorrupt-wrapped error on short output or
// trailing garbage.
func inflate(dst, payload []byte) error {
	inf := inflaters.Get().(*inflater)
	defer inflaters.Put(inf)
	inf.src.Reset(payload)
	if err := inf.fr.(flate.Resetter).Reset(&inf.src, nil); err != nil {
		return fmt.Errorf("%w: reset: %v", ErrCorrupt, err)
	}
	n, err := io.ReadFull(inf.fr, dst)
	if err != nil || n != len(dst) {
		return fmt.Errorf("%w: read %d of %d bytes: %v", ErrCorrupt, n, len(dst), err)
	}
	// A valid payload must end exactly at the expected length.
	var extra [1]byte
	if m, _ := inf.fr.Read(extra[:]); m != 0 {
		return fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	return nil
}

// Decompress reverses Compress into dst, which must be PageSize long. The
// flate state is pooled: after warm-up this path allocates only the
// per-block Huffman link tables noted on inflater.
func (c *Codec) Decompress(comp Compressed, dst []byte) error {
	if len(dst) != PageSize {
		return fmt.Errorf("compress: dst length %d != %d", len(dst), PageSize)
	}
	if comp.Raw {
		if len(comp.Data) != PageSize {
			return ErrCorrupt
		}
		copy(dst, comp.Data)
		return nil
	}
	return inflate(dst, comp.Data)
}

// CompressEntry deflates an arbitrary-length payload — the data-plane
// batching path parks whole entries, not just 4 KiB pages. It returns the
// deflated bytes and true when compression actually pays (the deflated form
// is smaller than the input), or (nil, false) for incompressible input. The
// writer is pooled like Compress's.
func (c *Codec) CompressEntry(data []byte) ([]byte, bool) {
	if len(data) == 0 {
		return nil, false
	}
	var buf bytes.Buffer
	buf.Grow(len(data))
	w, _ := c.writer(&buf)
	if _, err := w.Write(data); err != nil {
		return nil, false
	}
	if err := w.Close(); err != nil {
		return nil, false
	}
	c.wp.Put(w)
	payload := buf.Bytes()
	if len(payload) >= len(data) {
		return nil, false
	}
	return payload, true
}

// DecompressEntry reverses CompressEntry: it inflates payload back to exactly
// rawLen bytes, failing with ErrCorrupt on any mismatch. The returned slice
// is freshly allocated; callers holding a destination buffer should prefer
// DecompressEntryInto.
func DecompressEntry(payload []byte, rawLen int) ([]byte, error) {
	out := make([]byte, rawLen)
	if err := DecompressEntryInto(out, payload); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressEntryInto inflates payload into exactly len(dst) bytes using
// pooled flate state — the zero-copy read path's counterpart to
// DecompressEntry. After warm-up it allocates only the per-block Huffman
// link tables noted on inflater.
func DecompressEntryInto(dst, payload []byte) error {
	return inflate(dst, payload)
}

// EntryClassFor returns the slab size class for an entry payload of n bytes
// under granularity g: the granularity's class when the payload fits within
// a page, the exact byte length above that (entries, unlike pages, may be
// arbitrarily large), and never below the smallest class.
func (g Granularity) EntryClassFor(n int) int {
	if n > g[len(g)-1] {
		return n
	}
	return g.ClassFor(n)
}

// ZbudStoredSize models Zswap's zbud allocator: at most two compressed pages
// share one physical page, so a compressed payload costs half a page when it
// fits in 2 KB and a whole page otherwise.
func ZbudStoredSize(compressedLen int) int {
	if compressedLen <= PageSize/2 {
		return PageSize / 2
	}
	return PageSize
}

// Ratio returns rawBytes/storedBytes, the aggregate compression ratio
// reported in Figure 3. It returns zero when storedBytes is zero.
func Ratio(rawBytes, storedBytes int64) float64 {
	if storedBytes == 0 {
		return 0
	}
	return float64(rawBytes) / float64(storedBytes)
}

// Model predicts stored size classes from a known per-page compressibility
// without running deflate, for simulation-scale workloads.
type Model struct {
	gran Granularity
}

// NewModel returns a model codec over granularity g.
func NewModel(g Granularity) (*Model, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Model{gran: g}, nil
}

// StoredSize returns the class a page with the given compressibility ratio
// occupies (ratio r means the page deflates to PageSize/r bytes). Ratios at
// or below 1 store raw.
func (m *Model) StoredSize(ratio float64) int {
	if ratio <= 1 {
		return PageSize
	}
	return m.gran.ClassFor(int(float64(PageSize) / ratio))
}

// GeneratePage fills a fresh PageSize page whose deflate-compressed size is
// approximately PageSize/ratio. Ratio 1 produces an incompressible page of
// pure random bytes; higher ratios mix in runs of repeated bytes. The same
// rng state always yields the same page.
func GeneratePage(rng *rand.Rand, ratio float64) []byte {
	if ratio < 1 {
		ratio = 1
	}
	page := make([]byte, PageSize)
	// Fraction of the page that is random (incompressible). Deflate stores
	// random data at slightly over 1:1 (plus ~40 bytes of block framing) and
	// long runs at ~0, so the random byte count is calibrated to make the
	// deflated size land at PageSize/ratio.
	target := float64(PageSize) / ratio
	nRandom := int((target - 40) / 1.05)
	if nRandom < 0 {
		nRandom = 0
	}
	if nRandom > PageSize {
		nRandom = PageSize
	}
	// Interleave random bytes and zero runs in chunks so deflate's 32 KB
	// window sees genuine runs.
	const chunk = 64
	written := 0
	for i := 0; i < PageSize; i += chunk {
		end := i + chunk
		if end > PageSize {
			end = PageSize
		}
		if written < nRandom {
			n := end - i
			if written+n > nRandom {
				n = nRandom - written
			}
			for j := 0; j < n; j++ {
				page[i+j] = byte(rng.Intn(256))
			}
			written += n
		}
	}
	return page
}
