// Package bufpool is the repository's shared size-classed frame buffer pool.
// It backs every layer of the zero-copy data plane — the TCP transport's
// one-sided read responses, the client's compressed-read scratch buffers, and
// the transport helpers' gather fallback — so a steady-state read or write
// recycles its transient buffers instead of allocating them per operation.
//
// # Ownership contract
//
// Every buffer in the system is in exactly one of three states, and the rules
// below say who may move it between them:
//
//  1. Pooled. Get(n) hands out a length-n buffer drawn from the size class
//     that fits it. The caller becomes the owner.
//  2. Owned. The owner may read and write the buffer freely and may transfer
//     ownership (return it from a function, hand it to a channel). Exactly
//     one owner exists at a time; the transfer must be explicit.
//  3. Released. Put(b) returns an owned buffer to its class. After Put the
//     caller must not touch b again — another goroutine may already own it.
//
// Releasing is always optional: an owner that retains a buffer indefinitely
// (or hands it to application code with no release obligation) simply strands
// one pooled buffer, which the garbage collector reclaims. Double-release is
// the only misuse that corrupts data, so the contract every layer follows is:
// release only buffers you own, and never after ownership was transferred.
// Buffers that did not come from Get (wrong capacity for their class) are
// silently dropped by Put, so a conservative caller may Put any buffer whose
// provenance it knows is "mine and dead".
//
// Size classes are powers of two from 4 KiB to 4 MiB; requests above the top
// class allocate directly (rare: bulk transfers), smaller ones ride in the
// 4 KiB class so a page-sized op never hands back a multi-megabyte buffer.
package bufpool

import (
	"math/bits"
	"sync"
)

const (
	// MinBuf is the smallest pooled capacity; smaller requests share it.
	MinBuf = 4 << 10
	// MaxBuf is the largest pooled capacity; larger requests allocate.
	MaxBuf = 4 << 20

	classes = 11 // MinBuf << 10 == MaxBuf
)

var pools [classes]sync.Pool

// boxes recycles the *[]byte containers buffers ride in while pooled. Without
// this, every Put would heap-allocate a fresh slice-header box (and every Get
// discard one), costing exactly the one allocation per op the pool exists to
// avoid.
var boxes = sync.Pool{New: func() any { return new([]byte) }}

// classFor returns the smallest class whose buffers hold n bytes.
func classFor(n int) int {
	if n <= MinBuf {
		return 0
	}
	c := bits.Len(uint(n-1)) - bits.Len(uint(MinBuf)) + 1
	if c >= classes {
		return classes - 1
	}
	return c
}

// Get returns a length-n buffer, reusing a pooled one when available. The
// contents are unspecified (buffers are not zeroed between uses); callers
// must treat it as uninitialized memory.
func Get(n int) []byte {
	if n == 0 {
		return nil
	}
	if n > MaxBuf {
		return make([]byte, n)
	}
	c := classFor(n)
	if p, ok := pools[c].Get().(*[]byte); ok {
		b := (*p)[:n]
		*p = nil
		boxes.Put(p)
		return b
	}
	return make([]byte, n, MinBuf<<c)
}

// Put releases a buffer previously returned by Get. Buffers whose capacity is
// not an exact class size (they did not come from Get, or came from the
// above-MaxBuf direct-allocation path) are dropped, so Put never poisons a
// class with short buffers.
func Put(b []byte) {
	c := cap(b)
	if c < MinBuf || c > MaxBuf {
		return
	}
	cl := bits.Len(uint(c)) - bits.Len(uint(MinBuf))
	if c != MinBuf<<cl {
		return
	}
	p := boxes.Get().(*[]byte)
	*p = b[:0]
	pools[cl].Put(p)
}
