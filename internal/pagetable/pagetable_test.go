package pagetable

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	tab := New()
	loc := Location{Tier: TierRemote, Primary: 3, Replicas: []NodeID{4, 5}, StoredSize: 2048, RawSize: 4096}
	tab.Put(7, loc)
	got, err := tab.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tier != TierRemote || got.Primary != 3 || len(got.Replicas) != 2 {
		t.Fatalf("Get = %+v", got)
	}
	if !tab.Delete(7) {
		t.Fatal("Delete reported absent")
	}
	if _, err := tab.Get(7); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if tab.Delete(7) {
		t.Fatal("second Delete reported present")
	}
}

func TestTierString(t *testing.T) {
	tests := []struct {
		tier Tier
		want string
	}{
		{TierSharedMemory, "shared-memory"},
		{TierSendBuffer, "send-buffer"},
		{TierRemote, "remote"},
		{TierDisk, "disk"},
		{Tier(0), "tier(0)"},
	}
	for _, tt := range tests {
		if got := tt.tier.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", tt.tier, got, tt.want)
		}
	}
}

func TestUpdateInsertModifyDelete(t *testing.T) {
	tab := New()
	// Insert via update.
	tab.Update(1, func(loc Location, ok bool) (Location, bool) {
		if ok {
			t.Fatal("entry should be absent")
		}
		return Location{Tier: TierSharedMemory}, true
	})
	// Modify.
	tab.Update(1, func(loc Location, ok bool) (Location, bool) {
		if !ok || loc.Tier != TierSharedMemory {
			t.Fatalf("ok=%v loc=%+v", ok, loc)
		}
		loc.Tier = TierDisk
		return loc, true
	})
	got, _ := tab.Get(1)
	if got.Tier != TierDisk {
		t.Fatalf("Tier = %v, want disk", got.Tier)
	}
	// Delete via update.
	tab.Update(1, func(loc Location, ok bool) (Location, bool) { return loc, false })
	if tab.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tab.Len())
	}
}

func TestLenAndForEach(t *testing.T) {
	tab := New()
	for i := EntryID(0); i < 1000; i++ {
		tab.Put(i, Location{Tier: TierSharedMemory})
	}
	if tab.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", tab.Len())
	}
	seen := map[EntryID]bool{}
	tab.ForEach(func(id EntryID, _ Location) { seen[id] = true })
	if len(seen) != 1000 {
		t.Fatalf("ForEach visited %d, want 1000", len(seen))
	}
}

func TestCountByTier(t *testing.T) {
	tab := New()
	tab.Put(1, Location{Tier: TierSharedMemory})
	tab.Put(2, Location{Tier: TierSharedMemory})
	tab.Put(3, Location{Tier: TierRemote})
	tab.Put(4, Location{Tier: TierDisk})
	got := tab.CountByTier()
	if got[TierSharedMemory] != 2 || got[TierRemote] != 1 || got[TierDisk] != 1 {
		t.Fatalf("CountByTier = %v", got)
	}
}

func TestEntriesOnNode(t *testing.T) {
	tab := New()
	tab.Put(1, Location{Tier: TierRemote, Primary: 1, Replicas: []NodeID{2, 3}})
	tab.Put(2, Location{Tier: TierRemote, Primary: 2, Replicas: []NodeID{3, 4}})
	tab.Put(3, Location{Tier: TierSharedMemory, Primary: 2}) // not remote: excluded
	tab.Put(4, Location{Tier: TierRemote, Primary: 5})
	got := tab.EntriesOnNode(2)
	if len(got) != 2 {
		t.Fatalf("EntriesOnNode(2) = %v, want 2 entries", got)
	}
	if got := tab.EntriesOnNode(9); len(got) != 0 {
		t.Fatalf("EntriesOnNode(9) = %v, want empty", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	tab := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				id := EntryID(base*1000 + i)
				tab.Put(id, Location{Tier: TierSharedMemory})
				if _, err := tab.Get(id); err != nil {
					t.Errorf("Get(%d): %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if tab.Len() != 8000 {
		t.Fatalf("Len = %d, want 8000", tab.Len())
	}
}

// Property: a table behaves like a plain map under a random op sequence.
func TestTableMatchesModelProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		tab := New()
		model := map[EntryID]Location{}
		for i, op := range ops {
			id := EntryID(op % 64)
			switch i % 3 {
			case 0:
				loc := Location{Tier: Tier(int(op)%4 + 1), RawSize: int(op)}
				tab.Put(id, loc)
				model[id] = loc
			case 1:
				got, err := tab.Get(id)
				want, ok := model[id]
				if ok != (err == nil) {
					return false
				}
				if ok && (got.Tier != want.Tier || got.RawSize != want.RawSize) {
					return false
				}
			case 2:
				if tab.Delete(id) != (func() bool { _, ok := model[id]; return ok })() {
					return false
				}
				delete(model, id)
			}
		}
		return tab.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMetadataBytesMatchesPaperEstimate(t *testing.T) {
	// Paper §IV.C: 4 KB entries, 8 B metadata — 2 TB cluster memory needs a
	// multi-GB table per node; 10 TB needs ~5x that.
	const tb = int64(1) << 40
	got2TB := MetadataBytes(2*tb, 4096)
	if got2TB != 4*(int64(1)<<30) {
		t.Fatalf("2TB metadata = %d, want 4 GiB", got2TB)
	}
	got10TB := MetadataBytes(10*tb, 4096)
	if got10TB != 5*got2TB {
		t.Fatalf("10TB metadata = %d, want 5x of %d", got10TB, got2TB)
	}
}

func TestMetadataBytesPanicsOnBadEntrySize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MetadataBytes(1, 0)
}

func TestGroupedMetadataBytesScalesDown(t *testing.T) {
	const tb = int64(1) << 40
	flat := MetadataBytes(10*tb, 4096)
	grouped := GroupedMetadataBytes(10*tb, 4096, 100, 10)
	if grouped*10 != flat {
		t.Fatalf("grouped = %d, want flat/10 = %d", grouped, flat/10)
	}
}

func TestGroupedMetadataBytesValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for group larger than cluster")
		}
	}()
	GroupedMetadataBytes(1, 4096, 4, 8)
}

func TestGroupedTable(t *testing.T) {
	gt := NewGrouped()
	gt.Group(0).Put(1, Location{Tier: TierRemote})
	gt.Group(1).Put(1, Location{Tier: TierDisk})
	if gt.Groups() != 2 {
		t.Fatalf("Groups = %d, want 2", gt.Groups())
	}
	if gt.TotalLen() != 2 {
		t.Fatalf("TotalLen = %d, want 2", gt.TotalLen())
	}
	// Same group handle is returned on reuse.
	a, _ := gt.Group(0).Get(1)
	if a.Tier != TierRemote {
		t.Fatalf("group 0 entry tier = %v", a.Tier)
	}
}

func TestGroupedTableConcurrent(t *testing.T) {
	gt := NewGrouped()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				gt.Group(g%4).Put(EntryID(g*1000+i), Location{Tier: TierSharedMemory})
			}
		}(g)
	}
	wg.Wait()
	if gt.Groups() != 4 {
		t.Fatalf("Groups = %d, want 4", gt.Groups())
	}
	if gt.TotalLen() != 1600 {
		t.Fatalf("TotalLen = %d, want 1600", gt.TotalLen())
	}
}

func BenchmarkTablePut(b *testing.B) {
	tab := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.Put(EntryID(i), Location{Tier: TierSharedMemory})
	}
}

func BenchmarkTableGet(b *testing.B) {
	tab := New()
	for i := 0; i < 1<<16; i++ {
		tab.Put(EntryID(i), Location{Tier: TierSharedMemory})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tab.Get(EntryID(i & (1<<16 - 1))); err != nil {
			b.Fatal(err)
		}
	}
}
