// Package pagetable implements the disaggregated memory map (§IV.C of the
// paper): the per-virtual-server metadata structure that records, for every
// data entry (swapped-out page, cache partition, key-value record), where in
// the disaggregated memory system it currently lives — the node-coordinated
// shared memory pool, the local RDMA send buffer, a set of remote nodes, or
// external storage.
//
// The paper calls out that a single flat in-memory hash table does not scale
// (5 GB of metadata per node for 2 TB of cluster memory at 8 B per 4 KB
// entry); the GroupedTable partitions the map by sharing group so each node
// only tracks entries within its group, and MetadataBytes exposes the §IV.C
// cost model that the mapscale experiment reproduces.
package pagetable

import (
	"errors"
	"fmt"
	"sync"
)

// Tier identifies where a data entry is parked. Values start at one so the
// zero Tier is detectably unset.
type Tier int

// Tiers in decreasing access speed, mirroring Figure 1's pools.
const (
	// TierSharedMemory is the node-coordinated shared memory pool.
	TierSharedMemory Tier = iota + 1
	// TierSendBuffer is the local RDMA-registered send buffer pool.
	TierSendBuffer
	// TierRemote is the receive buffer pool on one or more remote nodes.
	TierRemote
	// TierDisk is external secondary storage (the OS swap device).
	TierDisk
)

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case TierSharedMemory:
		return "shared-memory"
	case TierSendBuffer:
		return "send-buffer"
	case TierRemote:
		return "remote"
	case TierDisk:
		return "disk"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// EntryID names one data entry (page or cache partition) within one virtual
// server's map.
type EntryID uint64

// NodeID names a physical node in the cluster.
type NodeID int

// SlabRef locates a block inside a node's registered pool.
type SlabRef struct {
	SlabID int
	Offset int
}

// Location records where an entry lives and how it is stored.
type Location struct {
	Tier Tier
	// Primary is the node holding the authoritative copy (meaningful for
	// TierRemote; for local tiers it is the owning node).
	Primary NodeID
	// Replicas are the additional nodes holding copies (TierRemote only).
	Replicas []NodeID
	// Ref locates the block inside the tier's pool (shared memory, send
	// buffer, or the primary's receive pool).
	Ref SlabRef
	// StoredSize is the size class occupied after compression.
	StoredSize int
	// RawSize is the uncompressed entry size.
	RawSize int
	// DiskOffset is the swap-device offset for TierDisk.
	DiskOffset int64
	// BatchID groups entries swapped out in the same batching window; the
	// proactive batch swap-in path prefetches by BatchID.
	BatchID uint64
}

// ErrNotFound is returned when an entry has no recorded location.
var ErrNotFound = errors.New("pagetable: entry not found")

const numShards = 64

type shard struct {
	mu sync.RWMutex
	m  map[EntryID]Location
}

// Table is a concurrency-safe entry→location map for one virtual server.
type Table struct {
	shards [numShards]*shard
}

// New returns an empty table.
func New() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i] = &shard{m: map[EntryID]Location{}}
	}
	return t
}

func (t *Table) shardFor(id EntryID) *shard {
	// Fibonacci hashing spreads sequential page IDs across shards.
	return t.shards[(uint64(id)*0x9E3779B97F4A7C15)>>58&(numShards-1)]
}

// Put records or replaces the location of id.
func (t *Table) Put(id EntryID, loc Location) {
	s := t.shardFor(id)
	s.mu.Lock()
	s.m[id] = loc
	s.mu.Unlock()
}

// Get returns the location of id.
func (t *Table) Get(id EntryID) (Location, error) {
	s := t.shardFor(id)
	s.mu.RLock()
	loc, ok := s.m[id]
	s.mu.RUnlock()
	if !ok {
		return Location{}, fmt.Errorf("%w: entry %d", ErrNotFound, id)
	}
	return loc, nil
}

// Delete removes id, reporting whether it was present.
func (t *Table) Delete(id EntryID) bool {
	s := t.shardFor(id)
	s.mu.Lock()
	_, ok := s.m[id]
	delete(s.m, id)
	s.mu.Unlock()
	return ok
}

// Update atomically applies fn to the location of id. fn receives the current
// location (ok=false when absent) and returns the new location; returning
// keep=false deletes the entry instead.
func (t *Table) Update(id EntryID, fn func(loc Location, ok bool) (Location, bool)) {
	s := t.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.m[id]
	next, keep := fn(cur, ok)
	if keep {
		s.m[id] = next
	} else {
		delete(s.m, id)
	}
}

// Len returns the number of recorded entries.
func (t *Table) Len() int {
	n := 0
	for _, s := range t.shards {
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// ForEach calls fn for every entry. The iteration order is unspecified; fn
// must not call back into the table.
func (t *Table) ForEach(fn func(id EntryID, loc Location)) {
	for _, s := range t.shards {
		s.mu.RLock()
		for id, loc := range s.m {
			fn(id, loc)
		}
		s.mu.RUnlock()
	}
}

// CountByTier returns entry counts per tier.
func (t *Table) CountByTier() map[Tier]int {
	out := map[Tier]int{}
	t.ForEach(func(_ EntryID, loc Location) { out[loc.Tier]++ })
	return out
}

// EntriesOnNode returns the IDs whose primary or replica set includes node.
// The result order is unspecified.
func (t *Table) EntriesOnNode(node NodeID) []EntryID {
	var ids []EntryID
	t.ForEach(func(id EntryID, loc Location) {
		if loc.Tier != TierRemote {
			return
		}
		if loc.Primary == node {
			ids = append(ids, id)
			return
		}
		for _, r := range loc.Replicas {
			if r == node {
				ids = append(ids, id)
				return
			}
		}
	})
	return ids
}

// EntryMetadataBytes is the per-entry metadata footprint the paper assumes in
// its §IV.C estimate: an 8-byte location identifier.
const EntryMetadataBytes = 8

// MetadataBytes reproduces the paper's scalability arithmetic: the metadata a
// flat map needs on every node to track clusterBytes of disaggregated memory
// at the given entry size. With 4 KB entries and 8 B of metadata, 2 TB of
// cluster memory costs ~4 GiB per node (the paper rounds to 5 GB) and 10 TB
// costs ~20 GiB (paper: 25 GB).
func MetadataBytes(clusterBytes int64, entrySize int) int64 {
	if entrySize <= 0 {
		panic("pagetable: entry size must be positive")
	}
	entries := clusterBytes / int64(entrySize)
	return entries * EntryMetadataBytes
}

// GroupedMetadataBytes is the per-node metadata cost when the cluster is
// partitioned into sharing groups of groupNodes nodes each (§IV.C's
// hierarchical group sharing model): a node only tracks entries inside its
// own group.
func GroupedMetadataBytes(clusterBytes int64, entrySize, totalNodes, groupNodes int) int64 {
	if totalNodes <= 0 || groupNodes <= 0 || groupNodes > totalNodes {
		panic("pagetable: invalid group shape")
	}
	groupBytes := clusterBytes * int64(groupNodes) / int64(totalNodes)
	return MetadataBytes(groupBytes, entrySize)
}

// GroupedTable partitions tables by sharing group so lookups and metadata
// stay group-local.
type GroupedTable struct {
	mu     sync.RWMutex
	groups map[int]*Table
}

// NewGrouped returns an empty grouped table.
func NewGrouped() *GroupedTable {
	return &GroupedTable{groups: map[int]*Table{}}
}

// Group returns the table for group g, creating it on first use.
func (gt *GroupedTable) Group(g int) *Table {
	gt.mu.RLock()
	t, ok := gt.groups[g]
	gt.mu.RUnlock()
	if ok {
		return t
	}
	gt.mu.Lock()
	defer gt.mu.Unlock()
	if t, ok = gt.groups[g]; ok {
		return t
	}
	t = New()
	gt.groups[g] = t
	return t
}

// Groups returns the number of materialized groups.
func (gt *GroupedTable) Groups() int {
	gt.mu.RLock()
	defer gt.mu.RUnlock()
	return len(gt.groups)
}

// TotalLen sums entry counts across all groups.
func (gt *GroupedTable) TotalLen() int {
	gt.mu.RLock()
	defer gt.mu.RUnlock()
	n := 0
	for _, t := range gt.groups {
		n += t.Len()
	}
	return n
}
