package replication

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeStore is an in-memory Store with per-node failure injection.
type fakeStore struct {
	mu       sync.Mutex
	data     map[NodeID]map[EntryID][]byte
	failPut  map[NodeID]bool
	failGet  map[NodeID]bool
	putCalls int
}

func newFakeStore() *fakeStore {
	return &fakeStore{
		data:    map[NodeID]map[EntryID][]byte{},
		failPut: map[NodeID]bool{},
		failGet: map[NodeID]bool{},
	}
}

func (f *fakeStore) Put(_ context.Context, node NodeID, id EntryID, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.putCalls++
	if f.failPut[node] {
		return fmt.Errorf("node %d unreachable", node)
	}
	if f.data[node] == nil {
		f.data[node] = map[EntryID][]byte{}
	}
	f.data[node][id] = append([]byte(nil), data...)
	return nil
}

func (f *fakeStore) Get(_ context.Context, node NodeID, id EntryID) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failGet[node] {
		return nil, fmt.Errorf("node %d unreachable", node)
	}
	d, ok := f.data[node][id]
	if !ok {
		return nil, fmt.Errorf("node %d: entry %d absent", node, id)
	}
	return append([]byte(nil), d...), nil
}

func (f *fakeStore) Delete(_ context.Context, node NodeID, id EntryID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.data[node], id)
	return nil
}

func (f *fakeStore) has(node NodeID, id EntryID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.data[node][id]
	return ok
}

var _ Store = (*fakeStore)(nil)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("expected error for nil store")
	}
	if _, err := New(newFakeStore(), WithFactor(0)); err == nil {
		t.Fatal("expected error for factor 0")
	}
	r, err := New(newFakeStore())
	if err != nil {
		t.Fatal(err)
	}
	if r.Factor() != DefaultFactor {
		t.Fatalf("Factor = %d, want %d", r.Factor(), DefaultFactor)
	}
}

func TestWriteReplicatesToAllNodes(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	r, _ := New(st)
	nodes := []NodeID{1, 2, 3}
	if err := r.Write(ctx, nodes, 42, []byte("page")); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if !st.has(n, 42) {
			t.Fatalf("node %d missing replica", n)
		}
	}
}

func TestWriteWrongNodeCount(t *testing.T) {
	ctx := context.Background()
	r, _ := New(newFakeStore())
	if err := r.Write(ctx, []NodeID{1, 2}, 1, nil); err == nil {
		t.Fatal("expected error for wrong node count")
	}
}

func TestWriteAbortsAtomically(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	st.failPut[3] = true
	r, _ := New(st)
	err := r.Write(ctx, []NodeID{1, 2, 3}, 7, []byte("x"))
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	// All-or-nothing: successful copies rolled back.
	for _, n := range []NodeID{1, 2, 3} {
		if st.has(n, 7) {
			t.Fatalf("node %d still holds aborted entry", n)
		}
	}
}

func TestReadFailsOverToReplicas(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	r, _ := New(st)
	nodes := []NodeID{1, 2, 3}
	if err := r.Write(ctx, nodes, 9, []byte("data")); err != nil {
		t.Fatal(err)
	}
	st.failGet[1] = true
	st.failGet[2] = true
	data, servedBy, err := r.Read(ctx, nodes, 9)
	if err != nil {
		t.Fatal(err)
	}
	if servedBy != 3 {
		t.Fatalf("servedBy = %d, want 3", servedBy)
	}
	if !bytes.Equal(data, []byte("data")) {
		t.Fatalf("data = %q", data)
	}
}

func TestReadAllReplicasDown(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	r, _ := New(st)
	nodes := []NodeID{1, 2, 3}
	_ = r.Write(ctx, nodes, 9, []byte("data"))
	for _, n := range nodes {
		st.failGet[n] = true
	}
	_, _, err := r.Read(ctx, nodes, 9)
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("err = %v, want ErrNoReplica", err)
	}
}

func TestReadEmptyReplicaSet(t *testing.T) {
	ctx := context.Background()
	r, _ := New(newFakeStore())
	if _, _, err := r.Read(ctx, nil, 1); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("err = %v, want ErrNoReplica", err)
	}
}

func TestDeleteRemovesAllCopies(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	r, _ := New(st)
	nodes := []NodeID{1, 2, 3}
	_ = r.Write(ctx, nodes, 5, []byte("z"))
	if err := r.Delete(ctx, nodes, 5); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if st.has(n, 5) {
			t.Fatalf("node %d still holds deleted entry", n)
		}
	}
}

func TestRepairRestoresFactor(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	r, _ := New(st)
	nodes := []NodeID{1, 2, 3}
	if err := r.Write(ctx, nodes, 11, []byte("page11")); err != nil {
		t.Fatal(err)
	}
	// Node 2 is evicted/crashed; node 4 replaces it.
	newSet, err := r.Repair(ctx, nodes, 11, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(newSet) != 3 {
		t.Fatalf("replica set = %v, want 3 nodes", newSet)
	}
	if !st.has(4, 11) {
		t.Fatal("replacement node missing copy")
	}
	for _, n := range newSet {
		if n == 2 {
			t.Fatalf("lost node still in set %v", newSet)
		}
	}
	// Data still readable from new set.
	data, _, err := r.Read(ctx, newSet, 11)
	if err != nil || !bytes.Equal(data, []byte("page11")) {
		t.Fatalf("read after repair: %q, %v", data, err)
	}
}

func TestRepairLostNotInSet(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	r, _ := New(st)
	nodes := []NodeID{1, 2, 3}
	_ = r.Write(ctx, nodes, 1, []byte("x"))
	if _, err := r.Repair(ctx, nodes, 1, 9, 4); err == nil {
		t.Fatal("expected error for lost node outside set")
	}
}

func TestRepairReplacementAlreadyHolds(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	r, _ := New(st)
	nodes := []NodeID{1, 2, 3}
	_ = r.Write(ctx, nodes, 1, []byte("x"))
	if _, err := r.Repair(ctx, nodes, 1, 2, 3); err == nil {
		t.Fatal("expected error for replacement already in set")
	}
}

func TestRepairWithNoSurvivingCopy(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	r, _ := New(st)
	nodes := []NodeID{1, 2, 3}
	_ = r.Write(ctx, nodes, 1, []byte("x"))
	st.failGet[1] = true
	st.failGet[3] = true
	if _, err := r.Repair(ctx, nodes, 1, 2, 4); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("err = %v, want ErrNoReplica", err)
	}
}

func TestSingleFactorNoReplication(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	r, err := New(st, WithFactor(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Write(ctx, []NodeID{5}, 1, []byte("solo")); err != nil {
		t.Fatal(err)
	}
	if st.putCalls != 1 {
		t.Fatalf("putCalls = %d, want 1", st.putCalls)
	}
}

// barrierStore blocks every Put until all want puts have arrived, so a Write
// completes only if the replicator genuinely fans out concurrently.
type barrierStore struct {
	*fakeStore
	mu      sync.Mutex
	arrived int
	want    int
	ready   chan struct{}
}

func newBarrierStore(want int) *barrierStore {
	return &barrierStore{fakeStore: newFakeStore(), want: want, ready: make(chan struct{})}
}

func (b *barrierStore) Put(ctx context.Context, node NodeID, id EntryID, data []byte) error {
	b.mu.Lock()
	b.arrived++
	if b.arrived == b.want {
		close(b.ready)
	}
	b.mu.Unlock()
	select {
	case <-b.ready:
	case <-ctx.Done():
		return ctx.Err()
	}
	return b.fakeStore.Put(ctx, node, id, data)
}

func TestWriteFansOutConcurrently(t *testing.T) {
	st := newBarrierStore(3)
	r, _ := New(st)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// With a serial fan-out the first Put would block forever waiting for the
	// other two and the context would expire; the parallel fan-out releases
	// the barrier.
	if err := r.Write(ctx, []NodeID{1, 2, 3}, 1, []byte("x")); err != nil {
		t.Fatalf("parallel write did not fan out: %v", err)
	}
	for _, n := range []NodeID{1, 2, 3} {
		if !st.has(n, 1) {
			t.Fatalf("node %d missing replica", n)
		}
	}
}

// exclusiveStore fails any Put that overlaps another in-flight Put, proving
// serial issue order.
type exclusiveStore struct {
	*fakeStore
	mu       sync.Mutex
	inFlight int
}

func (e *exclusiveStore) Put(ctx context.Context, node NodeID, id EntryID, data []byte) error {
	e.mu.Lock()
	e.inFlight++
	over := e.inFlight > 1
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.inFlight--
		e.mu.Unlock()
	}()
	if over {
		return fmt.Errorf("node %d: overlapping put", node)
	}
	return e.fakeStore.Put(ctx, node, id, data)
}

func TestSerialFanoutOption(t *testing.T) {
	st := &exclusiveStore{fakeStore: newFakeStore()}
	r, err := New(st, WithSerialFanout())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := r.Write(context.Background(), []NodeID{1, 2, 3}, EntryID(i), []byte("s")); err != nil {
			t.Fatalf("serial write %d: %v", i, err)
		}
	}
}

func TestWriteAttemptsAllReplicasOnFailure(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	st.failPut[1] = true // the first node fails; 2 and 3 must still be tried
	r, _ := New(st)
	err := r.Write(ctx, []NodeID{1, 2, 3}, 4, []byte("x"))
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if st.putCalls != 3 {
		t.Fatalf("putCalls = %d, want 3 (no short-circuit on first failure)", st.putCalls)
	}
	for _, n := range []NodeID{1, 2, 3} {
		if st.has(n, 4) {
			t.Fatalf("node %d still holds aborted entry", n)
		}
	}
}

// cancellingStore fails Puts on one node and, before failing, cancels the
// caller's context — modeling an abort caused by the caller's deadline
// expiring mid-write. Deletes refuse to run on a dead context, exactly like
// a real transport would.
type cancellingStore struct {
	*fakeStore
	failNode NodeID
	cancel   context.CancelFunc
}

func (c *cancellingStore) Put(ctx context.Context, node NodeID, id EntryID, data []byte) error {
	if node == c.failNode {
		c.cancel()
		return fmt.Errorf("node %d unreachable", node)
	}
	return c.fakeStore.Put(ctx, node, id, data)
}

func (c *cancellingStore) Delete(ctx context.Context, node NodeID, id EntryID) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.fakeStore.Delete(ctx, node, id)
}

func TestRollbackRunsOnDetachedContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st := &cancellingStore{fakeStore: newFakeStore(), failNode: 3, cancel: cancel}
	r, _ := New(st, WithSerialFanout())
	err := r.Write(ctx, []NodeID{1, 2, 3}, 8, []byte("x"))
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if ctx.Err() == nil {
		t.Fatal("test store should have cancelled the caller context")
	}
	// The rollback must have run despite the dead caller context: a rollback
	// on ctx would have been refused by Delete, stranding copies on 1 and 2.
	for _, n := range []NodeID{1, 2} {
		if st.has(n, 8) {
			t.Fatalf("node %d holds a stranded copy: rollback used the cancelled caller context", n)
		}
	}
}

func TestConcurrentWrites(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	r, _ := New(st)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := EntryID(i)
			if err := r.Write(ctx, []NodeID{1, 2, 3}, id, []byte{byte(i)}); err != nil {
				t.Errorf("Write(%d): %v", id, err)
				return
			}
			data, _, err := r.Read(ctx, []NodeID{1, 2, 3}, id)
			if err != nil || data[0] != byte(i) {
				t.Errorf("Read(%d) = %v, %v", id, data, err)
			}
		}(i)
	}
	wg.Wait()
}
