package replication

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// fakeStore is an in-memory Store with per-node failure injection.
type fakeStore struct {
	mu       sync.Mutex
	data     map[NodeID]map[EntryID][]byte
	failPut  map[NodeID]bool
	failGet  map[NodeID]bool
	putCalls int
}

func newFakeStore() *fakeStore {
	return &fakeStore{
		data:    map[NodeID]map[EntryID][]byte{},
		failPut: map[NodeID]bool{},
		failGet: map[NodeID]bool{},
	}
}

func (f *fakeStore) Put(_ context.Context, node NodeID, id EntryID, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.putCalls++
	if f.failPut[node] {
		return fmt.Errorf("node %d unreachable", node)
	}
	if f.data[node] == nil {
		f.data[node] = map[EntryID][]byte{}
	}
	f.data[node][id] = append([]byte(nil), data...)
	return nil
}

func (f *fakeStore) Get(_ context.Context, node NodeID, id EntryID) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failGet[node] {
		return nil, fmt.Errorf("node %d unreachable", node)
	}
	d, ok := f.data[node][id]
	if !ok {
		return nil, fmt.Errorf("node %d: entry %d absent", node, id)
	}
	return append([]byte(nil), d...), nil
}

func (f *fakeStore) Delete(_ context.Context, node NodeID, id EntryID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.data[node], id)
	return nil
}

func (f *fakeStore) has(node NodeID, id EntryID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.data[node][id]
	return ok
}

var _ Store = (*fakeStore)(nil)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("expected error for nil store")
	}
	if _, err := New(newFakeStore(), WithFactor(0)); err == nil {
		t.Fatal("expected error for factor 0")
	}
	r, err := New(newFakeStore())
	if err != nil {
		t.Fatal(err)
	}
	if r.Factor() != DefaultFactor {
		t.Fatalf("Factor = %d, want %d", r.Factor(), DefaultFactor)
	}
}

func TestWriteReplicatesToAllNodes(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	r, _ := New(st)
	nodes := []NodeID{1, 2, 3}
	if err := r.Write(ctx, nodes, 42, []byte("page")); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if !st.has(n, 42) {
			t.Fatalf("node %d missing replica", n)
		}
	}
}

func TestWriteWrongNodeCount(t *testing.T) {
	ctx := context.Background()
	r, _ := New(newFakeStore())
	if err := r.Write(ctx, []NodeID{1, 2}, 1, nil); err == nil {
		t.Fatal("expected error for wrong node count")
	}
}

func TestWriteAbortsAtomically(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	st.failPut[3] = true
	r, _ := New(st)
	err := r.Write(ctx, []NodeID{1, 2, 3}, 7, []byte("x"))
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	// All-or-nothing: successful copies rolled back.
	for _, n := range []NodeID{1, 2, 3} {
		if st.has(n, 7) {
			t.Fatalf("node %d still holds aborted entry", n)
		}
	}
}

func TestReadFailsOverToReplicas(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	r, _ := New(st)
	nodes := []NodeID{1, 2, 3}
	if err := r.Write(ctx, nodes, 9, []byte("data")); err != nil {
		t.Fatal(err)
	}
	st.failGet[1] = true
	st.failGet[2] = true
	data, servedBy, err := r.Read(ctx, nodes, 9)
	if err != nil {
		t.Fatal(err)
	}
	if servedBy != 3 {
		t.Fatalf("servedBy = %d, want 3", servedBy)
	}
	if !bytes.Equal(data, []byte("data")) {
		t.Fatalf("data = %q", data)
	}
}

func TestReadAllReplicasDown(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	r, _ := New(st)
	nodes := []NodeID{1, 2, 3}
	_ = r.Write(ctx, nodes, 9, []byte("data"))
	for _, n := range nodes {
		st.failGet[n] = true
	}
	_, _, err := r.Read(ctx, nodes, 9)
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("err = %v, want ErrNoReplica", err)
	}
}

func TestReadEmptyReplicaSet(t *testing.T) {
	ctx := context.Background()
	r, _ := New(newFakeStore())
	if _, _, err := r.Read(ctx, nil, 1); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("err = %v, want ErrNoReplica", err)
	}
}

func TestDeleteRemovesAllCopies(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	r, _ := New(st)
	nodes := []NodeID{1, 2, 3}
	_ = r.Write(ctx, nodes, 5, []byte("z"))
	if err := r.Delete(ctx, nodes, 5); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if st.has(n, 5) {
			t.Fatalf("node %d still holds deleted entry", n)
		}
	}
}

func TestRepairRestoresFactor(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	r, _ := New(st)
	nodes := []NodeID{1, 2, 3}
	if err := r.Write(ctx, nodes, 11, []byte("page11")); err != nil {
		t.Fatal(err)
	}
	// Node 2 is evicted/crashed; node 4 replaces it.
	newSet, err := r.Repair(ctx, nodes, 11, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(newSet) != 3 {
		t.Fatalf("replica set = %v, want 3 nodes", newSet)
	}
	if !st.has(4, 11) {
		t.Fatal("replacement node missing copy")
	}
	for _, n := range newSet {
		if n == 2 {
			t.Fatalf("lost node still in set %v", newSet)
		}
	}
	// Data still readable from new set.
	data, _, err := r.Read(ctx, newSet, 11)
	if err != nil || !bytes.Equal(data, []byte("page11")) {
		t.Fatalf("read after repair: %q, %v", data, err)
	}
}

func TestRepairLostNotInSet(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	r, _ := New(st)
	nodes := []NodeID{1, 2, 3}
	_ = r.Write(ctx, nodes, 1, []byte("x"))
	if _, err := r.Repair(ctx, nodes, 1, 9, 4); err == nil {
		t.Fatal("expected error for lost node outside set")
	}
}

func TestRepairReplacementAlreadyHolds(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	r, _ := New(st)
	nodes := []NodeID{1, 2, 3}
	_ = r.Write(ctx, nodes, 1, []byte("x"))
	if _, err := r.Repair(ctx, nodes, 1, 2, 3); err == nil {
		t.Fatal("expected error for replacement already in set")
	}
}

func TestRepairWithNoSurvivingCopy(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	r, _ := New(st)
	nodes := []NodeID{1, 2, 3}
	_ = r.Write(ctx, nodes, 1, []byte("x"))
	st.failGet[1] = true
	st.failGet[3] = true
	if _, err := r.Repair(ctx, nodes, 1, 2, 4); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("err = %v, want ErrNoReplica", err)
	}
}

func TestSingleFactorNoReplication(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	r, err := New(st, WithFactor(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Write(ctx, []NodeID{5}, 1, []byte("solo")); err != nil {
		t.Fatal(err)
	}
	if st.putCalls != 1 {
		t.Fatalf("putCalls = %d, want 1", st.putCalls)
	}
}

func TestConcurrentWrites(t *testing.T) {
	ctx := context.Background()
	st := newFakeStore()
	r, _ := New(st)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := EntryID(i)
			if err := r.Write(ctx, []NodeID{1, 2, 3}, id, []byte{byte(i)}); err != nil {
				t.Errorf("Write(%d): %v", id, err)
				return
			}
			data, _, err := r.Read(ctx, []NodeID{1, 2, 3}, id)
			if err != nil || data[0] != byte(i) {
				t.Errorf("Read(%d) = %v, %v", id, data, err)
			}
		}(i)
	}
	wg.Wait()
}
