package replication

import (
	"context"
	"fmt"
)

// PickFunc supplies replacement donors during Restore: count distinct nodes,
// none of which appear in exclude. The node manager backs it with its
// placement balancer over the live candidate list.
type PickFunc func(count int, exclude []NodeID) ([]NodeID, error)

// Policy is the shared durability-policy interface (§IV.D generalized): how
// an entry's bytes spread across donors, how they come back, and how
// durability is re-established after donor loss. Two implementations exist —
// this package's Replicator (rf<N>: N full copies) and ec.CodingPolicy
// (rs<K>.<M>: Reed–Solomon striping) — selected per node via
// core.Config.Durability.
type Policy interface {
	// Name identifies the policy ("rf3", "rs4.2") in stats and flags.
	Name() string
	// Width is the number of distinct donors each entry occupies.
	Width() int
	// MinAlive is how many of those donors must survive for the entry to be
	// readable: 1 for replication, k for an RS(k, m) stripe.
	MinAlive() int
	// ShardClass maps an entry's size class to the per-donor allocation
	// class: the class itself for replication, ceil(class/k) for coding —
	// the source of coding's capacity-per-durable-byte win.
	ShardClass(entryClass int) int
	// Write spreads data for id across nodes atomically (all or nothing).
	Write(ctx context.Context, nodes []NodeID, id EntryID, data []byte) error
	// Read assembles the entry, tolerating up to Width-MinAlive donor
	// failures, and reports the node that served it (the primary for
	// striped reads).
	Read(ctx context.Context, nodes []NodeID, id EntryID) ([]byte, NodeID, error)
	// ReadAt fetches n bytes at offset off within the stored payload.
	ReadAt(ctx context.Context, nodes []NodeID, id EntryID, off, n int) ([]byte, error)
	// Delete releases the entry on every donor.
	Delete(ctx context.Context, nodes []NodeID, id EntryID) error
	// Restore re-establishes durability after the donors in lost died or
	// evicted the entry, drawing replacements from pick. It returns the
	// updated donor set and the lost donors whose share could NOT be
	// restored this pass (the caller requeues those). A non-nil error means
	// no progress was made at all.
	Restore(ctx context.Context, nodes []NodeID, id EntryID, lost []NodeID, pick PickFunc) (newSet, stillLost []NodeID, err error)
}

// RangeStore is an optional Store extension: read a sub-range of an entry's
// stored payload on one node. The core remote store implements it with a
// one-sided read at the recorded offset.
type RangeStore interface {
	GetAt(ctx context.Context, node NodeID, id EntryID, off, n int) ([]byte, error)
}

// ScatterStore is an optional Store extension: read an entry's payload
// directly into dst (len(dst) must equal the stored length), eliminating the
// per-shard allocation on striped reads.
type ScatterStore interface {
	GetInto(ctx context.Context, node NodeID, id EntryID, dst []byte) error
}

var _ Policy = (*Replicator)(nil)

// Name implements Policy.
func (r *Replicator) Name() string { return fmt.Sprintf("rf%d", r.factor) }

// Width implements Policy.
func (r *Replicator) Width() int { return r.factor }

// MinAlive implements Policy: any single surviving copy serves reads.
func (r *Replicator) MinAlive() int { return 1 }

// ShardClass implements Policy: every copy is full-size.
func (r *Replicator) ShardClass(entryClass int) int { return entryClass }

// ReadAt implements Policy: a sub-range read with primary-then-replica
// failover when the store supports range reads, else a full read sliced.
func (r *Replicator) ReadAt(ctx context.Context, nodes []NodeID, id EntryID, off, n int) ([]byte, error) {
	if rs, ok := r.store.(RangeStore); ok {
		var lastErr error
		for _, node := range nodes {
			data, err := rs.GetAt(ctx, node, id, off, n)
			if err == nil {
				return data, nil
			}
			lastErr = err
		}
		if lastErr == nil {
			lastErr = fmt.Errorf("empty replica set")
		}
		return nil, fmt.Errorf("%w: entry %d: %w", ErrNoReplica, id, lastErr)
	}
	data, _, err := r.Read(ctx, nodes, id)
	if err != nil {
		return nil, err
	}
	if off < 0 || n < 0 || off+n > len(data) {
		return nil, fmt.Errorf("replication: range [%d,%d) exceeds payload %d", off, off+n, len(data))
	}
	return data[off : off+n], nil
}

// Restore implements Policy: each lost replica is re-created from a
// surviving copy on a freshly-picked replacement. Lost members no longer in
// the set (an earlier pass already handled them) are skipped, and members
// whose repair fails this pass come back in stillLost for requeueing — the
// partial-repair accounting the binary repaired/failed model lost.
func (r *Replicator) Restore(ctx context.Context, nodes []NodeID, id EntryID, lost []NodeID, pick PickFunc) ([]NodeID, []NodeID, error) {
	current := append([]NodeID(nil), nodes...)
	var still []NodeID
	var firstErr error
	progress := false
	for _, l := range lost {
		member := false
		for _, n := range current {
			if n == l {
				member = true
				break
			}
		}
		if !member {
			progress = true // someone already repaired it: the queue entry is stale
			continue
		}
		replacement, err := pick(1, current)
		if err != nil {
			still = append(still, l)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		newSet, err := r.Repair(ctx, current, id, l, replacement[0])
		if err != nil {
			still = append(still, l)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		current = newSet
		progress = true
	}
	if !progress && len(still) > 0 {
		return nodes, nil, firstErr
	}
	return current, still, nil
}
