// Package replication implements the fault-tolerance protocol of §IV.D: each
// remote write is replicated to a primary plus two replica nodes (the paper
// adopts HDFS-style triple-replica modularity), every remote operation is
// atomic ("all or nothing"), and reads fail over from the primary through the
// replicas. When a replica is lost — connection failure, node crash, or
// preemptive slab eviction — Repair re-establishes the replication factor on
// a replacement node.
//
// Over a real fabric, Write and Delete fan their per-replica operations out
// concurrently (every replica is always attempted; an aborted write rolls
// back on a context detached from the caller's); under the discrete-event
// simulation, or with WithSerialFanout, they stay serial.
//
// The package is transport-agnostic: it drives any Store implementation,
// which in this repository is backed by the simulated RDMA fabric, the TCP
// fabric, or an in-memory fake in tests.
package replication

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"godm/internal/des"
	"godm/internal/metrics"
	"godm/internal/trace"
)

// NodeID names a remote node.
type NodeID int

// EntryID names a replicated data entry.
type EntryID uint64

// Sentinel errors.
var (
	// ErrNoReplica is returned when every node in the replica set failed.
	ErrNoReplica = errors.New("replication: no reachable replica")
	// ErrAborted is returned when an atomic write rolled back.
	ErrAborted = errors.New("replication: write aborted")
)

// Store is the per-node storage the replicator drives. Implementations must
// be safe for concurrent use.
type Store interface {
	// Put writes data for id on node.
	Put(ctx context.Context, node NodeID, id EntryID, data []byte) error
	// Get reads data for id from node.
	Get(ctx context.Context, node NodeID, id EntryID) ([]byte, error)
	// Delete removes id from node. Deleting an absent entry is not an error.
	Delete(ctx context.Context, node NodeID, id EntryID) error
}

// DefaultFactor is the paper's replication factor (primary + 2 replicas).
const DefaultFactor = 3

// Replicator coordinates replicated, atomic remote writes.
type Replicator struct {
	store  Store
	factor int
	serial bool
	met    replMetrics
}

// rollbackTimeout bounds the detached rollback of an aborted write. It is a
// wall-clock deadline: the simulated fabric never consults deadlines, so
// under DES the timer is inert and rollback completes in simulated time.
const rollbackTimeout = 2 * time.Second

// replMetrics is the protocol's instrumentation. Latency observations use
// trace.Now, so simulated runs stay deterministic.
type replMetrics struct {
	writes        *metrics.Counter
	writeAborts   *metrics.Counter
	rollbacks     *metrics.Counter
	rollbackFails *metrics.Counter
	reads         *metrics.Counter
	readFailover  *metrics.Counter
	deletes       *metrics.Counter
	repairs       *metrics.Counter
	writeLatency  *metrics.Histogram
	readLatency   *metrics.Histogram
}

func newReplMetrics(reg *metrics.Registry) replMetrics {
	return replMetrics{
		writes:        reg.Counter("writes"),
		writeAborts:   reg.Counter("write_aborts"),
		rollbacks:     reg.Counter("rollbacks"),
		rollbackFails: reg.Counter("rollback_fails"),
		reads:         reg.Counter("reads"),
		readFailover:  reg.Counter("read_failovers"),
		deletes:       reg.Counter("deletes"),
		repairs:       reg.Counter("repairs"),
		writeLatency:  reg.Histogram("write_latency"),
		readLatency:   reg.Histogram("read_latency"),
	}
}

// Option configures a Replicator.
type Option func(*Replicator)

// WithFactor overrides the replication factor (>= 1).
func WithFactor(n int) Option {
	return func(r *Replicator) { r.factor = n }
}

// WithMetrics mounts the replicator's instrumentation on reg (by default it
// lives in a private registry nothing exports).
func WithMetrics(reg *metrics.Registry) Option {
	return func(r *Replicator) {
		if reg != nil {
			r.met = newReplMetrics(reg)
		}
	}
}

// WithSerialFanout forces Write and Delete to contact replicas one node at a
// time, the pre-fan-out behavior. It exists as the baseline for the
// data-plane benchmarks and as an escape hatch for transports that cannot
// take concurrent operations.
func WithSerialFanout() Option {
	return func(r *Replicator) { r.serial = true }
}

// New returns a replicator over store.
func New(store Store, opts ...Option) (*Replicator, error) {
	r := &Replicator{store: store, factor: DefaultFactor}
	r.met = newReplMetrics(metrics.NewRegistry("replication"))
	for _, o := range opts {
		o(r)
	}
	if r.factor < 1 {
		return nil, fmt.Errorf("replication: factor %d < 1", r.factor)
	}
	if store == nil {
		return nil, errors.New("replication: nil store")
	}
	return r, nil
}

// Factor returns the configured replication factor.
func (r *Replicator) Factor() int { return r.factor }

// fanout runs op against every node and returns one error slot per node.
// Over a real fabric the operations run concurrently — the multiplexed
// transport pipelines them over pooled connections, so a replicated write
// costs one round trip instead of factor round trips. Under the
// discrete-event simulation (or WithSerialFanout) the loop stays serial: a
// simulated process is cooperative and must issue its fabric operations from
// its own goroutine.
//
// Every node is always attempted — there is no short-circuit on first
// failure. Besides gathering the full success set for rollback, this keeps
// the per-stream operation sequence seen by the fault injector independent
// of which replica happens to fail first, which the seeded chaos replay
// tests depend on.
func (r *Replicator) fanout(ctx context.Context, nodes []NodeID, op func(context.Context, NodeID) error) []error {
	errs := make([]error, len(nodes))
	_, simulated := des.FromContext(ctx)
	if r.serial || simulated || len(nodes) == 1 {
		for i, n := range nodes {
			errs[i] = op(ctx, n)
		}
		return errs
	}
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n NodeID) {
			defer wg.Done()
			errs[i] = op(ctx, n)
		}(i, n)
	}
	wg.Wait()
	return errs
}

// Write stores data for id on the given nodes (nodes[0] is the primary) as an
// atomic transaction: if any node fails, the copies already written are
// rolled back and ErrAborted is returned. len(nodes) must equal the factor.
// The per-replica puts fan out concurrently over a real fabric (see fanout).
func (r *Replicator) Write(ctx context.Context, nodes []NodeID, id EntryID, data []byte) error {
	if len(nodes) != r.factor {
		return fmt.Errorf("replication: got %d nodes, factor is %d", len(nodes), r.factor)
	}
	ctx, sp := trace.Start(ctx, "repl.write")
	sp.Annotate("entry", uint64(id))
	sp.Annotate("nodes", len(nodes))
	r.met.writes.Inc()
	start := trace.Now(ctx)
	errs := r.fanout(ctx, nodes, func(ctx context.Context, n NodeID) error {
		return r.store.Put(ctx, n, id, data)
	})
	failed := -1
	for i, err := range errs {
		if err != nil {
			failed = i
			break
		}
	}
	if failed < 0 {
		r.met.writeLatency.Observe(trace.Now(ctx) - start)
		sp.End()
		return nil
	}
	// Best-effort rollback of every copy that did land. It must not ride the
	// caller's context: an abort is often *caused* by that context expiring,
	// and rolling back on a dead context would strand the copies it should be
	// erasing. Detach from cancellation (keeping values — the DES process and
	// trace ride along) and bound the cleanup with a fresh deadline. A node
	// that still fails rollback is cleaned up by eviction/repair.
	rbCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), rollbackTimeout)
	defer cancel()
	for i, err := range errs {
		if err == nil {
			r.met.rollbacks.Inc()
			if derr := r.store.Delete(rbCtx, nodes[i], id); derr != nil {
				r.met.rollbackFails.Inc()
			}
		}
	}
	r.met.writeAborts.Inc()
	err := fmt.Errorf("%w: put on node %d: %v", ErrAborted, nodes[failed], errs[failed])
	sp.EndErr(err)
	return err
}

// Read fetches id, trying the primary first and failing over to replicas in
// order. It returns the data together with the node that served it.
func (r *Replicator) Read(ctx context.Context, nodes []NodeID, id EntryID) ([]byte, NodeID, error) {
	ctx, sp := trace.Start(ctx, "repl.read")
	sp.Annotate("entry", uint64(id))
	r.met.reads.Inc()
	start := trace.Now(ctx)
	var lastErr error
	for i, n := range nodes {
		data, err := r.store.Get(ctx, n, id)
		if err == nil {
			if i > 0 {
				r.met.readFailover.Inc()
				sp.Annotate("failovers", i)
			}
			r.met.readLatency.Observe(trace.Now(ctx) - start)
			sp.End()
			return data, n, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("empty replica set")
	}
	// Dual %w: callers branch both on "every replica failed" and on the
	// underlying cause (the daemon retries ErrUnreachable ticks, for one).
	err := fmt.Errorf("%w: entry %d: %w", ErrNoReplica, id, lastErr)
	sp.EndErr(err)
	return nil, 0, err
}

// Delete removes id from every node, returning the error of the
// lowest-indexed node that failed after attempting all. Like Write, the
// per-node frees fan out concurrently over a real fabric.
func (r *Replicator) Delete(ctx context.Context, nodes []NodeID, id EntryID) error {
	r.met.deletes.Inc()
	errs := r.fanout(ctx, nodes, func(ctx context.Context, n NodeID) error {
		return r.store.Delete(ctx, n, id)
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("replication: delete on node %d: %w", nodes[i], err)
		}
	}
	return nil
}

// Repair restores the replication factor after node lost is no longer usable
// for entry id: it reads a surviving copy from the remaining nodes and writes
// it to replacement. It returns the updated replica set.
func (r *Replicator) Repair(ctx context.Context, nodes []NodeID, id EntryID, lost, replacement NodeID) ([]NodeID, error) {
	ctx, sp := trace.Start(ctx, "repl.repair")
	sp.Annotate("entry", uint64(id))
	sp.Annotate("lost", int(lost))
	defer sp.End()
	r.met.repairs.Inc()
	survivors := make([]NodeID, 0, len(nodes))
	for _, n := range nodes {
		if n != lost {
			survivors = append(survivors, n)
		}
	}
	if len(survivors) == len(nodes) {
		return nodes, fmt.Errorf("replication: node %d not in replica set %v", lost, nodes)
	}
	for _, n := range survivors {
		if n == replacement {
			return nodes, fmt.Errorf("replication: replacement %d already holds entry %d", replacement, id)
		}
	}
	data, _, err := r.Read(ctx, survivors, id)
	if err != nil {
		return nodes, fmt.Errorf("replication: repair of entry %d: %w", id, err)
	}
	if err := r.store.Put(ctx, replacement, id, data); err != nil {
		return nodes, fmt.Errorf("replication: repair put on node %d: %w", replacement, err)
	}
	return append(survivors, replacement), nil
}
