package transport_test

import (
	"context"
	"testing"

	"godm/internal/des"
	"godm/internal/faulty"
	"godm/internal/simnet"
	"godm/internal/tcpnet"
	"godm/internal/trace"
	"godm/internal/transport"
	"godm/internal/transport/transporttest"
)

// simFabric runs the conformance table over the discrete-event simulated
// network: verbs must be issued from inside a des process, so Run wraps the
// body in one and drives the event loop to completion.
type simFabric struct {
	env    *des.Env
	fabric *simnet.Fabric
}

func newSimFabric(t *testing.T) transporttest.Fabric {
	env := des.NewEnv()
	return &simFabric{env: env, fabric: simnet.New(env, simnet.DefaultParams())}
}

func (f *simFabric) Endpoints(t *testing.T, n int) []transport.Endpoint {
	t.Helper()
	eps := make([]transport.Endpoint, n)
	for i := 0; i < n; i++ {
		ep, err := f.fabric.Attach(transport.NodeID(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	return eps
}

func (f *simFabric) Run(t *testing.T, body func(ctx context.Context)) {
	t.Helper()
	f.env.Go("conformance", func(p *des.Proc) {
		body(des.NewContext(context.Background(), p))
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
}

// tcpFabric runs the same table over real loopback sockets with a full-mesh
// peer table.
type tcpFabric struct {
	eps []*tcpnet.Endpoint
}

func newTCPFabric(t *testing.T) transporttest.Fabric {
	return &tcpFabric{}
}

func (f *tcpFabric) Endpoints(t *testing.T, n int) []transport.Endpoint {
	t.Helper()
	addrs := map[transport.NodeID]string{}
	for i := 0; i < n; i++ {
		ep, err := tcpnet.Listen(transport.NodeID(i+1), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		f.eps = append(f.eps, ep)
		addrs[ep.ID()] = ep.Addr()
		t.Cleanup(func() { _ = ep.Close() })
	}
	out := make([]transport.Endpoint, n)
	for i, ep := range f.eps {
		for id, addr := range addrs {
			if id != ep.ID() {
				ep.AddPeer(id, addr)
			}
		}
		out[i] = ep
	}
	return out
}

func (f *tcpFabric) Run(t *testing.T, body func(ctx context.Context)) {
	body(context.Background())
}

func TestConformanceSim(t *testing.T) {
	transporttest.RunConformance(t, newSimFabric)
}

func TestConformanceTCP(t *testing.T) {
	transporttest.RunConformance(t, newTCPFabric)
}

// mwFabric wraps every endpoint of an inner fabric in a middleware, so the
// cluster control-plane cases can prove their frames survive the decorated
// stacks deployments actually run (tracing, fault injection) on both fabrics.
type mwFabric struct {
	inner transporttest.Fabric
	wrap  transport.Middleware
}

func (f *mwFabric) Endpoints(t *testing.T, n int) []transport.Endpoint {
	eps := f.inner.Endpoints(t, n)
	out := make([]transport.Endpoint, len(eps))
	for i, ep := range eps {
		out[i] = f.wrap(ep)
	}
	return out
}

func (f *mwFabric) Run(t *testing.T, body func(ctx context.Context)) {
	f.inner.Run(t, body)
}

// runCases runs the named conformance cases against a fabric constructor.
func runCases(t *testing.T, newFabric func(t *testing.T) transporttest.Fabric, names ...string) {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	for _, c := range transporttest.Cases() {
		if !want[c.Name] {
			continue
		}
		delete(want, c.Name)
		t.Run(c.Name, func(t *testing.T) {
			c.Run(t, newFabric(t))
		})
	}
	for n := range want {
		t.Fatalf("unknown conformance case %q", n)
	}
}

// TestClusterOpsThroughMiddlewares reruns the map-delta and redirect
// conformance cases with each fabric's endpoints wrapped in the trace
// middleware and in the fault injector (with no faults armed): the cluster
// control plane must be byte-transparent through both decorators.
func TestClusterOpsThroughMiddlewares(t *testing.T) {
	fabrics := map[string]func(t *testing.T) transporttest.Fabric{
		"sim": newSimFabric,
		"tcp": newTCPFabric,
	}
	middlewares := map[string]func() transport.Middleware{
		"trace":  func() transport.Middleware { return trace.Middleware(trace.New()) },
		"faulty": func() transport.Middleware { return faulty.New(1).Wrap },
	}
	for fname, newInner := range fabrics {
		for mname, mw := range middlewares {
			t.Run(fname+"/"+mname, func(t *testing.T) {
				runCases(t, func(t *testing.T) transporttest.Fabric {
					return &mwFabric{inner: newInner(t), wrap: mw()}
				}, "MapDeltaOpFidelity", "RedirectOpFidelity")
			})
		}
	}
}
