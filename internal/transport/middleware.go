package transport

// MaxFrameSize bounds a single operation's payload on every fabric (64 MiB).
// Both fabrics reject larger transfers on the send side with ErrFrameTooLarge
// before anything reaches the wire, so callers can rely on one portable limit
// when splitting bulk transfers — and so the simulated and real transports
// cannot drift apart on this part of the contract.
const MaxFrameSize = 64 << 20

// Middleware wraps an Endpoint with additional behaviour — fault injection,
// tracing, metrics — while preserving the verbs contract. Middlewares
// compose: the outermost wrapper sees every operation first.
type Middleware func(Endpoint) Endpoint

// Chain applies middlewares to ep, first middleware outermost, so
// Chain(ep, a, b) routes every verb through a, then b, then ep.
func Chain(ep Endpoint, mws ...Middleware) Endpoint {
	for i := len(mws) - 1; i >= 0; i-- {
		ep = mws[i](ep)
	}
	return ep
}
