// Package transporttest is the shared conformance suite for
// transport.Endpoint implementations. Both fabrics — the discrete-event
// simulated RDMA network and the real TCP transport — run the same table, so
// the verbs contract (sentinel errors, reliable-connected ordering, frame
// limits, close and cancellation semantics) cannot drift between them: a
// behaviour change that only one fabric exhibits fails here before any
// higher layer trips over it.
package transporttest

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"godm/internal/cluster"
	"godm/internal/trace"
	"godm/internal/transport"
)

// Fabric abstracts one network under test. Each conformance case asks for a
// fresh fabric, so implementations must not share state between calls.
type Fabric interface {
	// Endpoints attaches n endpoints with IDs 1..n to one shared network.
	Endpoints(t *testing.T, n int) []transport.Endpoint
	// Run executes body with a context suitable for issuing verbs (the
	// simulated fabric needs a discrete-event process carried in it) and
	// drives the network until body returns.
	Run(t *testing.T, body func(ctx context.Context))
}

// Case is one conformance check, run against a fresh fabric.
type Case struct {
	Name string
	Run  func(t *testing.T, f Fabric)
}

// Cases is the shared conformance table.
func Cases() []Case {
	return []Case{
		{"WriteReadRoundTrip", testWriteReadRoundTrip},
		{"RCOrdering", testRCOrdering},
		{"CallEchoAndPeerIdentity", testCallEcho},
		{"FrameTooLarge", testFrameTooLarge},
		{"SentinelErrors", testSentinels},
		{"LocalCloseRace", testLocalClose},
		{"RemoteCloseUnreachable", testRemoteClose},
		{"ContextCancellation", testContextCancellation},
		{"TraceContextPropagation", testTracePropagation},
		{"VectoredWriteEquivalence", testVectoredWriteEquivalence},
		{"ScatterReadInto", testScatterReadInto},
		{"MapDeltaOpFidelity", testMapDeltaOpFidelity},
		{"RedirectOpFidelity", testRedirectOpFidelity},
		{"ShardAllocOpFidelity", testShardAllocOpFidelity},
	}
}

// RunConformance runs every case as a subtest, building a fresh fabric per
// case via newFabric.
func RunConformance(t *testing.T, newFabric func(t *testing.T) Fabric) {
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			c.Run(t, newFabric(t))
		})
	}
}

const region transport.RegionID = 7

func testWriteReadRoundTrip(t *testing.T, f Fabric) {
	eps := f.Endpoints(t, 2)
	if _, err := eps[1].RegisterRegion(region, 4096); err != nil {
		t.Fatal(err)
	}
	f.Run(t, func(ctx context.Context) {
		want := bytes.Repeat([]byte{0x5A}, 1024)
		if err := eps[0].WriteRegion(ctx, 2, region, 128, want); err != nil {
			t.Fatalf("WriteRegion: %v", err)
		}
		got, err := eps[0].ReadRegion(ctx, 2, region, 128, len(want))
		if err != nil {
			t.Fatalf("ReadRegion: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Error("read-back mismatch")
		}
		// Bytes outside the written window stay zero.
		head, err := eps[0].ReadRegion(ctx, 2, region, 0, 128)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range head {
			if b != 0 {
				t.Error("write spilled outside its window")
				break
			}
		}
	})
}

// testRCOrdering checks the reliable-connected contract: operations issued
// in order on one connection are applied in order — the last serial write to
// an offset wins, and a read issued after a write observes it.
func testRCOrdering(t *testing.T, f Fabric) {
	eps := f.Endpoints(t, 2)
	if _, err := eps[1].RegisterRegion(region, 4096); err != nil {
		t.Fatal(err)
	}
	f.Run(t, func(ctx context.Context) {
		for round := 0; round < 8; round++ {
			payload := bytes.Repeat([]byte{byte(round + 1)}, 512)
			if err := eps[0].WriteRegion(ctx, 2, region, 0, payload); err != nil {
				t.Fatalf("round %d write: %v", round, err)
			}
			got, err := eps[0].ReadRegion(ctx, 2, region, 0, 512)
			if err != nil {
				t.Fatalf("round %d read: %v", round, err)
			}
			if got[0] != byte(round+1) || got[511] != byte(round+1) {
				t.Fatalf("round %d: read observed stale bytes %d/%d (write-read reordered)",
					round, got[0], got[511])
			}
		}
	})
}

func testCallEcho(t *testing.T, f Fabric) {
	eps := f.Endpoints(t, 2)
	var gotFrom transport.NodeID
	eps[1].SetHandler(func(_ context.Context, from transport.NodeID, payload []byte) ([]byte, error) {
		gotFrom = from
		return append([]byte("echo:"), payload...), nil
	})
	f.Run(t, func(ctx context.Context) {
		resp, err := eps[0].Call(ctx, 2, []byte("ping"))
		if err != nil {
			t.Fatalf("Call: %v", err)
		}
		if string(resp) != "echo:ping" {
			t.Errorf("resp = %q", resp)
		}
		if gotFrom != 1 {
			t.Errorf("handler saw caller %d, want 1", gotFrom)
		}
	})
}

func testFrameTooLarge(t *testing.T, f Fabric) {
	eps := f.Endpoints(t, 2)
	if _, err := eps[1].RegisterRegion(region, 4096); err != nil {
		t.Fatal(err)
	}
	huge := make([]byte, transport.MaxFrameSize+1)
	f.Run(t, func(ctx context.Context) {
		if err := eps[0].WriteRegion(ctx, 2, region, 0, huge); !errors.Is(err, transport.ErrFrameTooLarge) {
			t.Errorf("oversized write: %v, want ErrFrameTooLarge", err)
		}
		if _, err := eps[0].ReadRegion(ctx, 2, region, 0, transport.MaxFrameSize+1); !errors.Is(err, transport.ErrFrameTooLarge) {
			t.Errorf("oversized read: %v, want ErrFrameTooLarge", err)
		}
		if _, err := eps[0].Call(ctx, 2, huge); !errors.Is(err, transport.ErrFrameTooLarge) {
			t.Errorf("oversized call: %v, want ErrFrameTooLarge", err)
		}
		// The limit itself must not leak the payload onto the fabric: the
		// region is untouched after the rejected write.
		got, err := eps[0].ReadRegion(ctx, 2, region, 0, 16)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range got {
			if b != 0 {
				t.Error("rejected write modified the region")
				break
			}
		}
	})
}

func testSentinels(t *testing.T, f Fabric) {
	eps := f.Endpoints(t, 2)
	if _, err := eps[1].RegisterRegion(region, 1024); err != nil {
		t.Fatal(err)
	}
	f.Run(t, func(ctx context.Context) {
		if err := eps[0].WriteRegion(ctx, 2, 99, 0, []byte("x")); !errors.Is(err, transport.ErrNoRegion) {
			t.Errorf("unknown region: %v, want ErrNoRegion", err)
		}
		if err := eps[0].WriteRegion(ctx, 2, region, 1020, []byte("xxxxx")); !errors.Is(err, transport.ErrOutOfBounds) {
			t.Errorf("out-of-bounds write: %v, want ErrOutOfBounds", err)
		}
		if _, err := eps[0].ReadRegion(ctx, 2, region, -1, 4); !errors.Is(err, transport.ErrOutOfBounds) {
			t.Errorf("negative-offset read: %v, want ErrOutOfBounds", err)
		}
		if _, err := eps[0].Call(ctx, 2, []byte("nobody home")); !errors.Is(err, transport.ErrNoHandler) {
			t.Errorf("call without handler: %v, want ErrNoHandler", err)
		}
		if err := eps[0].WriteRegion(ctx, 42, region, 0, []byte("x")); !errors.Is(err, transport.ErrUnreachable) {
			t.Errorf("unknown node: %v, want ErrUnreachable", err)
		}
	})
}

// testLocalClose checks the close contract from the closing side: once Close
// returns, every subsequent operation fails with ErrClosed — no operation
// half-succeeds after close.
func testLocalClose(t *testing.T, f Fabric) {
	eps := f.Endpoints(t, 2)
	if _, err := eps[1].RegisterRegion(region, 1024); err != nil {
		t.Fatal(err)
	}
	f.Run(t, func(ctx context.Context) {
		if err := eps[0].WriteRegion(ctx, 2, region, 0, []byte("pre")); err != nil {
			t.Fatalf("write before close: %v", err)
		}
		if err := eps[0].Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := eps[0].WriteRegion(ctx, 2, region, 0, []byte("post")); !errors.Is(err, transport.ErrClosed) {
			t.Errorf("write after close: %v, want ErrClosed", err)
		}
		if _, err := eps[0].ReadRegion(ctx, 2, region, 0, 3); !errors.Is(err, transport.ErrClosed) {
			t.Errorf("read after close: %v, want ErrClosed", err)
		}
		if _, err := eps[0].Call(ctx, 2, []byte("x")); !errors.Is(err, transport.ErrClosed) {
			t.Errorf("call after close: %v, want ErrClosed", err)
		}
		// Registration on a closed endpoint also fails with ErrClosed.
		if _, err := eps[0].RegisterRegion(99, 64); !errors.Is(err, transport.ErrClosed) {
			t.Errorf("register after close: %v, want ErrClosed", err)
		}
	})
}

// testRemoteClose checks the close contract from the other side: a peer that
// closed is unreachable, not "closed" — the caller's endpoint is still fine.
func testRemoteClose(t *testing.T, f Fabric) {
	eps := f.Endpoints(t, 3)
	if _, err := eps[1].RegisterRegion(region, 1024); err != nil {
		t.Fatal(err)
	}
	if _, err := eps[2].RegisterRegion(region, 1024); err != nil {
		t.Fatal(err)
	}
	f.Run(t, func(ctx context.Context) {
		if err := eps[1].Close(); err != nil {
			t.Fatalf("peer Close: %v", err)
		}
		if err := eps[0].WriteRegion(ctx, 2, region, 0, []byte("x")); !errors.Is(err, transport.ErrUnreachable) {
			t.Errorf("write to closed peer: %v, want ErrUnreachable", err)
		}
		// Other peers are unaffected.
		if err := eps[0].WriteRegion(ctx, 3, region, 0, []byte("x")); err != nil {
			t.Errorf("write to healthy peer after neighbour closed: %v", err)
		}
	})
}

func testContextCancellation(t *testing.T, f Fabric) {
	eps := f.Endpoints(t, 2)
	if _, err := eps[1].RegisterRegion(region, 1024); err != nil {
		t.Fatal(err)
	}
	f.Run(t, func(ctx context.Context) {
		cancelled, cancel := context.WithCancel(ctx)
		cancel()
		if err := eps[0].WriteRegion(cancelled, 2, region, 0, []byte("x")); !errors.Is(err, context.Canceled) {
			t.Errorf("write with cancelled ctx: %v, want context.Canceled", err)
		}
		if _, err := eps[0].ReadRegion(cancelled, 2, region, 0, 4); !errors.Is(err, context.Canceled) {
			t.Errorf("read with cancelled ctx: %v, want context.Canceled", err)
		}
		if _, err := eps[0].Call(cancelled, 2, []byte("x")); !errors.Is(err, context.Canceled) {
			t.Errorf("call with cancelled ctx: %v, want context.Canceled", err)
		}
		// The endpoint survives: a fresh context works.
		if err := eps[0].WriteRegion(ctx, 2, region, 0, []byte("ok")); err != nil {
			t.Errorf("write after cancellation: %v", err)
		}
	})
}

// testTracePropagation checks that the trace middleware carries the caller's
// trace identity across the wire on both fabrics: the remote handler runs
// under the caller's trace, sees the bare payload (the envelope never leaks
// to application code), and the client- and server-side spans land in the
// same reassembled trace.
func testTracePropagation(t *testing.T, f Fabric) {
	eps := f.Endpoints(t, 2)
	tr := trace.New()
	mw := trace.Middleware(tr)
	client := mw(eps[0])
	server := mw(eps[1])

	var gotPayload string
	var gotTrace trace.TraceID
	var handlerSawContext bool
	server.SetHandler(func(ctx context.Context, _ transport.NodeID, payload []byte) ([]byte, error) {
		gotPayload = string(payload)
		if sc, ok := trace.SpanContextFrom(ctx); ok {
			handlerSawContext = true
			gotTrace = sc.Trace
		}
		return payload, nil
	})
	f.Run(t, func(ctx context.Context) {
		ctx = trace.WithTracer(ctx, tr)
		ctx, root := trace.Start(ctx, "conformance.op")
		resp, err := client.Call(ctx, 2, []byte("ping"))
		root.End()
		if err != nil {
			t.Fatalf("Call: %v", err)
		}
		if string(resp) != "ping" {
			t.Errorf("resp = %q, want the bare payload echoed", resp)
		}
		if gotPayload != "ping" {
			t.Errorf("handler payload = %q: the wire envelope leaked to application code", gotPayload)
		}
		if !handlerSawContext {
			t.Fatal("handler context carried no span context")
		}
		if gotTrace != root.TraceID() {
			t.Errorf("handler ran under trace %d, caller's trace is %d", gotTrace, root.TraceID())
		}
		var names []string
		for _, s := range tr.Spans(root.TraceID()) {
			names = append(names, s.Name)
		}
		joined := strings.Join(names, " ")
		for _, want := range []string{"conformance.op", "net.call", "net.serve"} {
			if !strings.Contains(joined, want) {
				t.Errorf("trace %d spans = %v, missing %s", root.TraceID(), names, want)
			}
		}
	})
}

// testVectoredWriteEquivalence checks the gather-write contract: a
// WriteRegionV of an iovec list must land on the target region byte-for-byte
// identically to a plain WriteRegion of the pre-assembled concatenation —
// whether the fabric implements transport.VectoredWriter natively or the
// package helper falls back to a pooled gather. Oversized iovec totals get
// the same ErrFrameTooLarge as oversized flat writes.
func testVectoredWriteEquivalence(t *testing.T, f Fabric) {
	eps := f.Endpoints(t, 2)
	if _, err := eps[1].RegisterRegion(region, 64<<10); err != nil {
		t.Fatal(err)
	}
	// Slices of uneven sizes, including an empty one mid-list.
	parts := [][]byte{
		bytes.Repeat([]byte{0x11}, 7),
		bytes.Repeat([]byte{0x22}, 4096),
		{},
		bytes.Repeat([]byte{0x33}, 513),
		{0x44},
	}
	var flat []byte
	for _, p := range parts {
		flat = append(flat, p...)
	}
	f.Run(t, func(ctx context.Context) {
		if err := transport.WriteRegionV(ctx, eps[0], 2, region, 100, parts); err != nil {
			t.Fatalf("WriteRegionV: %v", err)
		}
		if err := eps[0].WriteRegion(ctx, 2, region, 20000, flat); err != nil {
			t.Fatalf("WriteRegion: %v", err)
		}
		vGot, err := eps[0].ReadRegion(ctx, 2, region, 100, len(flat))
		if err != nil {
			t.Fatal(err)
		}
		fGot, err := eps[0].ReadRegion(ctx, 2, region, 20000, len(flat))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(vGot, flat) {
			t.Error("vectored write landed different bytes than the source iovec")
		}
		if !bytes.Equal(vGot, fGot) {
			t.Error("vectored and flat writes of the same bytes diverge on the region")
		}
		huge := [][]byte{make([]byte, transport.MaxFrameSize), {0x1}}
		if err := transport.WriteRegionV(ctx, eps[0], 2, region, 0, huge); !errors.Is(err, transport.ErrFrameTooLarge) {
			t.Errorf("oversized vectored write: %v, want ErrFrameTooLarge", err)
		}
	})
}

// testScatterReadInto checks the scatter-read contract: ReadRegionInto fills
// exactly len(dst) bytes of the caller's buffer with the same bytes a plain
// ReadRegion returns, errors leave sentinel semantics intact, and a
// destination overlapping the region bounds fails with ErrOutOfBounds.
func testScatterReadInto(t *testing.T, f Fabric) {
	eps := f.Endpoints(t, 2)
	if _, err := eps[1].RegisterRegion(region, 4096); err != nil {
		t.Fatal(err)
	}
	f.Run(t, func(ctx context.Context) {
		want := make([]byte, 1500)
		for i := range want {
			want[i] = byte(i * 7)
		}
		if err := eps[0].WriteRegion(ctx, 2, region, 64, want); err != nil {
			t.Fatal(err)
		}
		// Oversize dst with sentinel bytes: only the first len bytes may move.
		dst := bytes.Repeat([]byte{0xEE}, len(want)+8)
		if err := transport.ReadRegionInto(ctx, eps[0], 2, region, 64, dst[:len(want)]); err != nil {
			t.Fatalf("ReadRegionInto: %v", err)
		}
		if !bytes.Equal(dst[:len(want)], want) {
			t.Error("scatter read filled dst with different bytes than were written")
		}
		for _, b := range dst[len(want):] {
			if b != 0xEE {
				t.Error("scatter read wrote past len(dst)")
				break
			}
		}
		if err := transport.ReadRegionInto(ctx, eps[0], 2, region, 4000, make([]byte, 200)); !errors.Is(err, transport.ErrOutOfBounds) {
			t.Errorf("out-of-bounds scatter read: %v, want ErrOutOfBounds", err)
		}
		if err := transport.ReadRegionInto(ctx, eps[0], 2, 99, 0, make([]byte, 8)); !errors.Is(err, transport.ErrNoRegion) {
			t.Errorf("unknown-region scatter read: %v, want ErrNoRegion", err)
		}
	})
}

// testMapDeltaOpFidelity checks the epoch-versioned map-sync payloads of the
// cluster control plane survive a Call round trip bit-exactly: the server
// decodes the client's SyncRequest and answers with a SyncResponse carrying
// both a delta run (node changes with group incarnations, a leader set, a
// departure) and, on a second exchange, a full snapshot. Any fabric- or
// middleware-introduced corruption of these frames would desynchronise every
// directory in a cluster, so both fabrics prove fidelity here.
func testMapDeltaOpFidelity(t *testing.T, f Fabric) {
	eps := f.Endpoints(t, 2)
	wantDeltas := cluster.SyncResponse{
		Origin: 2,
		Deltas: []cluster.Delta{
			{
				Epoch:  7,
				Groups: 2,
				Changes: []cluster.Change{
					{State: cluster.NodeState{ID: 3, FreeBytes: 1 << 30, Alive: true, Group: 1, Gver: 4}},
					{State: cluster.NodeState{ID: 9, Alive: false, Group: 0, Gver: 1}},
					{State: cluster.NodeState{ID: 5}, Left: true},
				},
			},
			{
				Epoch:          8,
				Groups:         2,
				Leaders:        []cluster.GroupLeader{{Group: 0, Leader: 1}, {Group: 1, Leader: 3}},
				LeadersChanged: true,
				Root:           1,
				RootOK:         true,
			},
		},
	}
	snap := cluster.MapSnapshot{
		Epoch:   9,
		Groups:  1,
		Nodes:   []cluster.NodeState{{ID: 1, FreeBytes: 42, Alive: true, Gver: 2}},
		Leaders: []cluster.GroupLeader{{Group: 0, Leader: 1}},
		Root:    1,
		RootOK:  true,
	}
	wantSnap := cluster.SyncResponse{Origin: 2, Snapshot: &snap}
	var gotReq cluster.SyncRequest
	eps[1].SetHandler(func(_ context.Context, _ transport.NodeID, payload []byte) ([]byte, error) {
		req, rest, err := cluster.DecodeSyncRequest(payload)
		if err != nil || len(rest) != 0 {
			return nil, fmt.Errorf("decode request: %v (rest %d)", err, len(rest))
		}
		gotReq = req
		if req.Epoch == 0 {
			return cluster.AppendSyncResponse(nil, wantSnap), nil
		}
		return cluster.AppendSyncResponse(nil, wantDeltas), nil
	})
	f.Run(t, func(ctx context.Context) {
		resp, err := eps[0].Call(ctx, 2, cluster.AppendSyncRequest(nil, cluster.SyncRequest{Origin: 2, Epoch: 6}))
		if err != nil {
			t.Fatalf("Call: %v", err)
		}
		got, rest, err := cluster.DecodeSyncResponse(resp)
		if err != nil || len(rest) != 0 {
			t.Fatalf("decode response: %v (rest %d)", err, len(rest))
		}
		if gotReq != (cluster.SyncRequest{Origin: 2, Epoch: 6}) {
			t.Errorf("server saw request %+v", gotReq)
		}
		if !reflect.DeepEqual(got, wantDeltas) {
			t.Errorf("delta response mutated in flight:\n got %+v\nwant %+v", got, wantDeltas)
		}
		resp, err = eps[0].Call(ctx, 2, cluster.AppendSyncRequest(nil, cluster.SyncRequest{Origin: 2}))
		if err != nil {
			t.Fatalf("snapshot Call: %v", err)
		}
		got, rest, err = cluster.DecodeSyncResponse(resp)
		if err != nil || len(rest) != 0 {
			t.Fatalf("decode snapshot response: %v (rest %d)", err, len(rest))
		}
		if !reflect.DeepEqual(got, wantSnap) {
			t.Errorf("snapshot response mutated in flight:\n got %+v\nwant %+v", got, wantSnap)
		}
	})
}

// testRedirectOpFidelity checks a locate/redirect exchange — the status-plus
// [node][offset] frame a draining host answers stale readers with — crosses
// both fabrics intact, including the maximum offset and a zero offset, and
// that an in-place answer stays a single status byte.
func testRedirectOpFidelity(t *testing.T, f Fabric) {
	const (
		stOK       = 0
		stRedirect = 3
	)
	eps := f.Endpoints(t, 2)
	eps[1].SetHandler(func(_ context.Context, _ transport.NodeID, payload []byte) ([]byte, error) {
		if len(payload) != 17 {
			return nil, fmt.Errorf("locate frame = %d bytes, want 17", len(payload))
		}
		key := binary.BigEndian.Uint64(payload[1:9])
		offset := int64(binary.BigEndian.Uint64(payload[9:17]))
		if offset == 0 {
			return []byte{stOK}, nil
		}
		// Redirect to node key>>32 at the bit-inverted offset, exercising
		// high bytes in every field.
		b := []byte{stRedirect}
		b = binary.BigEndian.AppendUint64(b, key>>32)
		b = binary.BigEndian.AppendUint64(b, uint64(offset)^0x00FFFFFFFFFFFFFF)
		return b, nil
	})
	locate := func(key uint64, offset int64) []byte {
		b := []byte{10} // opLocate
		b = binary.BigEndian.AppendUint64(b, key)
		b = binary.BigEndian.AppendUint64(b, uint64(offset))
		return b
	}
	f.Run(t, func(ctx context.Context) {
		resp, err := eps[0].Call(ctx, 2, locate(0xAABBCCDD11223344, 0))
		if err != nil {
			t.Fatalf("in-place Call: %v", err)
		}
		if len(resp) != 1 || resp[0] != stOK {
			t.Errorf("in-place answer = %v, want single stOK byte", resp)
		}
		resp, err = eps[0].Call(ctx, 2, locate(0xAABBCCDD11223344, 0x0102030405060708))
		if err != nil {
			t.Fatalf("redirect Call: %v", err)
		}
		if len(resp) != 17 || resp[0] != stRedirect {
			t.Fatalf("redirect answer = %d bytes status %d", len(resp), resp[0])
		}
		if node := binary.BigEndian.Uint64(resp[1:9]); node != 0xAABBCCDD {
			t.Errorf("redirect node = %#x, want 0xAABBCCDD", node)
		}
		if off := binary.BigEndian.Uint64(resp[9:17]); off != 0x0102030405060708^0x00FFFFFFFFFFFFFF {
			t.Errorf("redirect offset = %#x mutated in flight", off)
		}
	})
}

// testShardAllocOpFidelity checks the erasure-coding control frames cross
// both fabrics bit-exactly: the 20-byte shard-alloc request ([op][key u64]
// [class u32][owner u32][idx][k][m]) and the 13-byte shard-stat request with
// its 5-byte coordinate answer ([stOK][hosted][idx][k][m]). A corrupted idx
// or k would make a repair reconstruct the wrong shard, so every field is
// driven with high bits set.
func testShardAllocOpFidelity(t *testing.T, f Fabric) {
	const (
		opAllocShard = 16
		opShardStat  = 17
		stOK         = 0
	)
	eps := f.Endpoints(t, 2)
	eps[1].SetHandler(func(_ context.Context, _ transport.NodeID, payload []byte) ([]byte, error) {
		switch payload[0] {
		case opAllocShard:
			if len(payload) != 20 {
				return nil, fmt.Errorf("shard alloc frame = %d bytes, want 20", len(payload))
			}
			// Answer with an alloc-style [stOK][offset u64] echoing the key so
			// the caller can verify the request fields arrived intact.
			b := []byte{stOK}
			b = binary.BigEndian.AppendUint64(b, binary.BigEndian.Uint64(payload[1:9]))
			return b, nil
		case opShardStat:
			if len(payload) != 13 {
				return nil, fmt.Errorf("shard stat frame = %d bytes, want 13", len(payload))
			}
			// Derive the coordinate answer from the request so corruption of
			// either frame is visible: idx = low key byte, k/m from the owner.
			owner := binary.BigEndian.Uint32(payload[9:13])
			return []byte{stOK, 1, payload[8], byte(owner >> 24), byte(owner)}, nil
		default:
			return nil, fmt.Errorf("unexpected op %d", payload[0])
		}
	})
	allocShard := func(key uint64, class, owner uint32, idx, k, m byte) []byte {
		b := []byte{opAllocShard}
		b = binary.BigEndian.AppendUint64(b, key)
		b = binary.BigEndian.AppendUint32(b, class)
		b = binary.BigEndian.AppendUint32(b, owner)
		return append(b, idx, k, m)
	}
	f.Run(t, func(ctx context.Context) {
		key := uint64(0xF00DFACE99887766)
		resp, err := eps[0].Call(ctx, 2, allocShard(key, 0x80000400, 0xFFEE0001, 0x3F, 0x3E, 0x02))
		if err != nil {
			t.Fatalf("shard alloc Call: %v", err)
		}
		if len(resp) != 9 || resp[0] != stOK {
			t.Fatalf("shard alloc answer = %d bytes status %d", len(resp), resp[0])
		}
		if echoed := binary.BigEndian.Uint64(resp[1:9]); echoed != key {
			t.Errorf("echoed key = %#x, want %#x", echoed, key)
		}
		stat := []byte{opShardStat}
		stat = binary.BigEndian.AppendUint64(stat, key)
		stat = binary.BigEndian.AppendUint32(stat, 0xAA0000BB)
		resp, err = eps[0].Call(ctx, 2, stat)
		if err != nil {
			t.Fatalf("shard stat Call: %v", err)
		}
		want := []byte{stOK, 1, 0x66, 0xAA, 0xBB}
		if !bytes.Equal(resp, want) {
			t.Errorf("shard stat answer = %v, want %v", resp, want)
		}
	})
}

// Describe renders the table for documentation/debugging.
func Describe() string {
	var b bytes.Buffer
	for _, c := range Cases() {
		fmt.Fprintf(&b, "%s\n", c.Name)
	}
	return b.String()
}
