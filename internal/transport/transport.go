// Package transport defines the verbs-style interface every interconnect in
// this repository implements (§IV.G of the paper). The paper builds its data
// plane on one-sided RDMA READ/WRITE into pre-registered memory regions and
// its control plane on two-sided SEND/RECV over a reliable-connected queue
// pair (RC QP), which delivers messages at most once and in order.
//
// Two fabrics implement the interface: internal/simnet, a discrete-event
// simulated InfiniBand network used by all experiments, and internal/tcpnet,
// a real TCP implementation used by the multi-process daemon, which trades
// kernel bypass for portability while preserving the same semantics.
package transport

import (
	"context"
	"errors"
)

// NodeID names a node on the fabric.
type NodeID int

// RegionID names a registered memory region within one node.
type RegionID uint32

// Sentinel errors shared by all fabrics.
var (
	// ErrUnreachable is returned when the target node is down, closed, or
	// partitioned away.
	ErrUnreachable = errors.New("transport: node unreachable")
	// ErrNoRegion is returned for one-sided operations on unregistered
	// regions (the RDMA equivalent of a protection-domain violation).
	ErrNoRegion = errors.New("transport: region not registered")
	// ErrOutOfBounds is returned when an access exceeds the region.
	ErrOutOfBounds = errors.New("transport: access outside region")
	// ErrNoHandler is returned for control-plane calls to a node that has
	// not installed a handler.
	ErrNoHandler = errors.New("transport: no control-plane handler")
	// ErrClosed is returned for operations on a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrFrameTooLarge is returned by fabrics with a bounded frame size when
	// a single operation's payload exceeds that bound. It is detected on the
	// send side, before anything reaches the wire, so the caller can split
	// the transfer into smaller operations.
	ErrFrameTooLarge = errors.New("transport: frame too large")
)

// Handler serves control-plane (two-sided) requests. Implementations must be
// safe for concurrent use.
//
// ctx is the request-scoped context. On the simulated fabric it is the
// caller's context (so it carries the calling des.Proc and any trace state);
// on the TCP fabric it is a server context that is cancelled when the
// endpoint closes. Tracing middleware augments it with the caller's span.
type Handler func(ctx context.Context, from NodeID, payload []byte) ([]byte, error)

// Verbs is the operation set a node can issue toward its peers.
//
// All three verbs honor their context: when ctx is cancelled or its deadline
// expires, the operation returns promptly with ctx.Err(), and any late
// response from the peer is discarded by the fabric. Many operations toward
// the same peer may be in flight at once (like outstanding work requests on
// an RC QP); ordering is guaranteed between operations where one completes
// before the next is issued, while concurrently issued operations may be
// executed by the peer in any order.
type Verbs interface {
	// WriteRegion performs a one-sided RDMA write: data lands in the target
	// region without involving the remote CPU.
	WriteRegion(ctx context.Context, to NodeID, region RegionID, offset int64, data []byte) error
	// ReadRegion performs a one-sided RDMA read of n bytes.
	ReadRegion(ctx context.Context, to NodeID, region RegionID, offset int64, n int) ([]byte, error)
	// Call performs a two-sided send/receive round trip: the payload is
	// delivered to the target's Handler and its response returned.
	Call(ctx context.Context, to NodeID, payload []byte) ([]byte, error)
}

// Endpoint is one node's attachment to a fabric.
type Endpoint interface {
	Verbs
	// ID returns this endpoint's node ID.
	ID() NodeID
	// RegisterRegion pins size bytes and exposes them for one-sided access,
	// returning the backing buffer for local zero-copy use.
	RegisterRegion(id RegionID, size int) ([]byte, error)
	// DeregisterRegion unpins a region; in-flight remote accesses fail.
	DeregisterRegion(id RegionID) error
	// SetHandler installs the control-plane handler.
	SetHandler(h Handler)
	// Close detaches from the fabric; subsequent operations targeting this
	// node fail with ErrUnreachable.
	Close() error
}
