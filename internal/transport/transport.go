// Package transport defines the verbs-style interface every interconnect in
// this repository implements (§IV.G of the paper). The paper builds its data
// plane on one-sided RDMA READ/WRITE into pre-registered memory regions and
// its control plane on two-sided SEND/RECV over a reliable-connected queue
// pair (RC QP), which delivers messages at most once and in order.
//
// Two fabrics implement the interface: internal/simnet, a discrete-event
// simulated InfiniBand network used by all experiments, and internal/tcpnet,
// a real TCP implementation used by the multi-process daemon, which trades
// kernel bypass for portability while preserving the same semantics.
package transport

import (
	"context"
	"errors"

	"godm/internal/bufpool"
)

// NodeID names a node on the fabric.
type NodeID int

// RegionID names a registered memory region within one node.
type RegionID uint32

// Sentinel errors shared by all fabrics.
var (
	// ErrUnreachable is returned when the target node is down, closed, or
	// partitioned away.
	ErrUnreachable = errors.New("transport: node unreachable")
	// ErrNoRegion is returned for one-sided operations on unregistered
	// regions (the RDMA equivalent of a protection-domain violation).
	ErrNoRegion = errors.New("transport: region not registered")
	// ErrOutOfBounds is returned when an access exceeds the region.
	ErrOutOfBounds = errors.New("transport: access outside region")
	// ErrNoHandler is returned for control-plane calls to a node that has
	// not installed a handler.
	ErrNoHandler = errors.New("transport: no control-plane handler")
	// ErrClosed is returned for operations on a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrFrameTooLarge is returned by fabrics with a bounded frame size when
	// a single operation's payload exceeds that bound. It is detected on the
	// send side, before anything reaches the wire, so the caller can split
	// the transfer into smaller operations.
	ErrFrameTooLarge = errors.New("transport: frame too large")
)

// Handler serves control-plane (two-sided) requests. Implementations must be
// safe for concurrent use.
//
// ctx is the request-scoped context. On the simulated fabric it is the
// caller's context (so it carries the calling des.Proc and any trace state);
// on the TCP fabric it is a server context that is cancelled when the
// endpoint closes. Tracing middleware augments it with the caller's span.
type Handler func(ctx context.Context, from NodeID, payload []byte) ([]byte, error)

// Verbs is the operation set a node can issue toward its peers.
//
// All three verbs honor their context: when ctx is cancelled or its deadline
// expires, the operation returns promptly with ctx.Err(), and any late
// response from the peer is discarded by the fabric. Many operations toward
// the same peer may be in flight at once (like outstanding work requests on
// an RC QP); ordering is guaranteed between operations where one completes
// before the next is issued, while concurrently issued operations may be
// executed by the peer in any order.
type Verbs interface {
	// WriteRegion performs a one-sided RDMA write: data lands in the target
	// region without involving the remote CPU.
	WriteRegion(ctx context.Context, to NodeID, region RegionID, offset int64, data []byte) error
	// ReadRegion performs a one-sided RDMA read of n bytes.
	ReadRegion(ctx context.Context, to NodeID, region RegionID, offset int64, n int) ([]byte, error)
	// Call performs a two-sided send/receive round trip: the payload is
	// delivered to the target's Handler and its response returned.
	Call(ctx context.Context, to NodeID, payload []byte) ([]byte, error)
}

// VectoredWriter is the gather-write capability: a one-sided write whose
// payload is a list of slices (an iovec) that land contiguously at offset, in
// order, as if they had been concatenated — without the fabric requiring the
// caller to assemble them first. Both fabrics and all transport middlewares
// implement it natively; WriteRegionV (the package helper) falls back to a
// pooled gather copy for a Verbs that does not.
//
// Buffer ownership: every slice remains owned by the caller and must stay
// unmodified until the call returns (the fabric may reference it until the
// frame reaches the wire, exactly as RDMA DMAs from registered memory).
type VectoredWriter interface {
	WriteRegionV(ctx context.Context, to NodeID, region RegionID, offset int64, bufs [][]byte) error
}

// ScatterReader is the scatter-read capability: a one-sided read whose
// payload lands directly in the caller's dst buffer — true one-sided-READ
// semantics with no intermediate allocation. len(dst) bytes are read.
//
// Buffer ownership: dst is lent to the fabric for the duration of the call.
// On a clean return (nil or error) the fabric has released it. If ctx is
// cancelled the fabric may be mid-scatter; implementations either finish
// draining the response into dst before returning ctx.Err() or guarantee dst
// was never touched — callers may reuse dst as soon as the call returns.
type ScatterReader interface {
	ReadRegionInto(ctx context.Context, to NodeID, region RegionID, offset int64, dst []byte) error
}

// WriteRegionV performs a gather write through v: natively when v implements
// VectoredWriter, otherwise by assembling bufs into one pooled buffer and
// issuing a plain WriteRegion. The result on the target region is identical
// either way — a contiguous [offset, offset+total) write of the
// concatenation of bufs.
func WriteRegionV(ctx context.Context, v Verbs, to NodeID, region RegionID, offset int64, bufs [][]byte) error {
	if vw, ok := v.(VectoredWriter); ok {
		return vw.WriteRegionV(ctx, to, region, offset, bufs)
	}
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	gather := bufpool.Get(total)
	n := 0
	for _, b := range bufs {
		n += copy(gather[n:], b)
	}
	err := v.WriteRegion(ctx, to, region, offset, gather)
	bufpool.Put(gather)
	return err
}

// ReadRegionInto performs a scatter read of len(dst) bytes through v:
// natively when v implements ScatterReader, otherwise via ReadRegion plus a
// copy into dst.
func ReadRegionInto(ctx context.Context, v Verbs, to NodeID, region RegionID, offset int64, dst []byte) error {
	if sr, ok := v.(ScatterReader); ok {
		return sr.ReadRegionInto(ctx, to, region, offset, dst)
	}
	data, err := v.ReadRegion(ctx, to, region, offset, len(dst))
	if err != nil {
		return err
	}
	copy(dst, data)
	return nil
}

// Endpoint is one node's attachment to a fabric.
type Endpoint interface {
	Verbs
	// ID returns this endpoint's node ID.
	ID() NodeID
	// RegisterRegion pins size bytes and exposes them for one-sided access,
	// returning the backing buffer for local zero-copy use.
	RegisterRegion(id RegionID, size int) ([]byte, error)
	// DeregisterRegion unpins a region; in-flight remote accesses fail.
	DeregisterRegion(id RegionID) error
	// SetHandler installs the control-plane handler.
	SetHandler(h Handler)
	// Close detaches from the fabric; subsequent operations targeting this
	// node fail with ErrUnreachable.
	Close() error
}
