// Package faulty is a deterministic fault-injection layer for the transport
// fabrics. It wraps any transport.Endpoint as a middleware (see
// transport.Middleware) and injects drops, delays, duplicate deliveries,
// truncated frames, asymmetric partitions, and whole-node crash/restart
// according to a seeded schedule, so the failure-handling paths of §IV.D —
// atomic replicated writes, failover reads, re-replication, heartbeat
// failure detection and leader election — can be exercised on demand and
// replayed exactly.
//
// # Determinism
//
// Every probabilistic decision is a pure function of (seed, rule index,
// per-stream sequence number): the injector keeps one monotonically
// increasing counter per (rule, verb, source, target) stream and hashes it
// with the seed, so the n-th matching operation of a stream meets the same
// fate in every run with that seed, regardless of wall-clock jitter. Under
// the discrete-event fabric (internal/simnet) replays are byte-for-byte
// identical; under real sockets (internal/tcpnet) the decision *set* is
// identical whenever each stream issues its operations in the same order —
// streams to distinct targets may interleave freely (the parallel replica
// fan-out does), because Pct decisions key on the per-stream counter and
// crash triggers on the per-target counter. Trace() returns the log in a
// canonical sorted order so such interleavings still compare equal. Rules
// combining AfterOps with a wildcard match are the exception: their gate
// reads a shared per-rule counter, so keep them to serially-driven
// scenarios. Crash and restart triggers can be expressed in operation counts
// ("after 12 ops") for cross-fabric determinism, or in injector time ("at
// t=5s") which is exact under simulation and approximate under wall clocks.
//
// # Fault semantics
//
// Injected failures present to the caller as transport.ErrUnreachable (and
// also match ErrInjected), mirroring what a dropped frame, dead peer, or cut
// link looks like on a real fabric:
//
//   - drop: the operation never reaches the peer; the caller gets an error.
//   - delay: the operation is held for the configured duration first
//     (simulated time under DES, wall time otherwise).
//   - duplicate: the operation executes twice on the peer — the at-least-once
//     hazard a retrying transport must not introduce on its own.
//   - truncate: a one-sided write lands a torn prefix of the payload before
//     the caller gets an error (a multi-packet RDMA write dying mid-flight);
//     reads and calls fail without effect, because a receiver discards a
//     length-framed message that arrives short.
//   - partition: directional from->to unreachability, composable into
//     asymmetric splits.
//   - crash: every operation to or from the node fails until a restart event
//     revives it.
package faulty

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"godm/internal/des"
	"godm/internal/transport"
)

// ErrInjected matches every error produced by the injector, so tests can
// tell injected faults from real ones. Injected faults also match
// transport.ErrUnreachable, which is how the layers above classify them.
var ErrInjected = errors.New("faulty: injected fault")

// faultError is an injected failure. It satisfies errors.Is for both
// ErrInjected and transport.ErrUnreachable.
type faultError struct{ msg string }

func (e *faultError) Error() string { return e.msg }

func (e *faultError) Is(target error) bool {
	return target == ErrInjected || target == transport.ErrUnreachable
}

func injectedf(format string, args ...any) error {
	return &faultError{msg: "faulty: " + fmt.Sprintf(format, args...)}
}

// Clock is the injector's time source for rule windows and delays. The
// default clock reads simulated time when the context carries a des.Proc and
// wall time otherwise, so one injector serves both fabrics.
type Clock interface {
	// Now reports the time since the injector was created.
	Now(ctx context.Context) time.Duration
	// Sleep suspends the caller for d.
	Sleep(ctx context.Context, d time.Duration)
}

type autoClock struct{ base time.Time }

// NewAutoClock returns the default clock: simulated time for contexts
// carrying a des.Proc, wall time since construction otherwise.
func NewAutoClock() Clock { return &autoClock{base: time.Now()} }

func (c *autoClock) Now(ctx context.Context) time.Duration {
	if p, ok := des.FromContext(ctx); ok {
		return p.Now()
	}
	return time.Since(c.base)
}

func (c *autoClock) Sleep(ctx context.Context, d time.Duration) {
	if p, ok := des.FromContext(ctx); ok {
		p.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Stats counts injected faults by kind.
type Stats struct {
	Drops      uint64
	Delays     uint64
	Duplicates uint64
	Truncates  uint64
	Partitions uint64 // operations refused by partition rules
	CrashFails uint64 // operations refused because an endpoint was crashed
}

// Total sums all injected faults.
func (s Stats) Total() uint64 {
	return s.Drops + s.Delays + s.Duplicates + s.Truncates + s.Partitions + s.CrashFails
}

// String renders the counters.
func (s Stats) String() string {
	return fmt.Sprintf("drops=%d delays=%d dups=%d truncs=%d partition-drops=%d crash-drops=%d",
		s.Drops, s.Delays, s.Duplicates, s.Truncates, s.Partitions, s.CrashFails)
}

// seqKey names one decision stream: the n-th op of a stream meets the same
// fate in every run with the same seed.
type seqKey struct {
	rule     int
	verb     Verb
	from, to transport.NodeID
}

// Injector owns a fault schedule and wraps endpoints with it. One injector
// is shared by every endpoint of a test cluster so it can enforce
// partitions and crashes globally. It is safe for concurrent use.
type Injector struct {
	clock Clock
	seed  uint64

	mu       sync.Mutex
	enabled  bool
	rules    []Rule
	matched  []uint64 // per-rule count of operations that matched it
	seq      map[seqKey]uint64
	opsTo    map[transport.NodeID]uint64 // delivered-op counter per target
	manually map[transport.NodeID]bool   // Crash/Restart API state
	stats    Stats
	trace    []string
}

// Option configures an Injector.
type Option func(*Injector)

// WithClock overrides the injector's time source.
func WithClock(c Clock) Option { return func(inj *Injector) { inj.clock = c } }

// New returns an enabled injector with no rules. The same seed always
// produces the same decision sequence.
func New(seed int64, opts ...Option) *Injector {
	inj := &Injector{
		seed:     uint64(seed),
		clock:    NewAutoClock(),
		enabled:  true,
		seq:      map[seqKey]uint64{},
		opsTo:    map[transport.NodeID]uint64{},
		manually: map[transport.NodeID]bool{},
	}
	for _, o := range opts {
		o(inj)
	}
	return inj
}

// AddRule appends one rule to the schedule.
func (inj *Injector) AddRule(r Rule) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.rules = append(inj.rules, r)
	inj.matched = append(inj.matched, 0)
}

// AddRules appends rules in order.
func (inj *Injector) AddRules(rules []Rule) {
	for _, r := range rules {
		inj.AddRule(r)
	}
}

// Load parses a rule script (see ParseRules) and appends the result.
func (inj *Injector) Load(script string) error {
	rules, err := ParseRules(script)
	if err != nil {
		return err
	}
	inj.AddRules(rules)
	return nil
}

// SetEnabled turns the whole injector on or off. Disabling it heals every
// fault at once: rules stay loaded but nothing fires.
func (inj *Injector) SetEnabled(on bool) {
	inj.mu.Lock()
	inj.enabled = on
	inj.mu.Unlock()
}

// Crash marks a node down immediately (independent of any schedule rule).
func (inj *Injector) Crash(n transport.NodeID) {
	inj.mu.Lock()
	inj.manually[n] = true
	inj.mu.Unlock()
}

// Restart revives a node crashed with Crash. It does not override schedule
// rules: a fired crash rule keeps the node down until its own restart rule.
func (inj *Injector) Restart(n transport.NodeID) {
	inj.mu.Lock()
	delete(inj.manually, n)
	inj.mu.Unlock()
}

// Crashed reports whether node n is currently down — manually or because a
// schedule rule has fired. ctx supplies the clock for time-based triggers.
func (inj *Injector) Crashed(ctx context.Context, n transport.NodeID) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if !inj.enabled {
		return false
	}
	return inj.crashedLocked(n, inj.clock.Now(ctx))
}

// Stats returns a snapshot of the injected-fault counters.
func (inj *Injector) Stats() Stats {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.stats
}

// Trace returns the decision log: one line per injected fault, identifying
// the stream and its per-target operation number but no clock readings. The
// copy is returned sorted: with concurrent but per-stream-ordered issue
// (e.g. a parallel replica fan-out) the *set* of decisions is deterministic
// while the global append order is scheduler-dependent, so the canonical
// order makes two runs with the same seed and per-stream issue order produce
// identical traces on either fabric.
func (inj *Injector) Trace() []string {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]string, len(inj.trace))
	copy(out, inj.trace)
	sort.Strings(out)
	return out
}

const traceCap = 1 << 14

func (inj *Injector) traceLocked(kind string, verb Verb, from, to transport.NodeID) {
	if len(inj.trace) >= traceCap {
		return
	}
	inj.trace = append(inj.trace, fmt.Sprintf("%s %s %d->%d n%d", kind, verb, from, to, inj.opsTo[to]))
}

// Wrap returns ep with this injector's faults applied to its outbound verbs.
// Wrap every endpoint of a cluster with the same injector: crashes and
// partitions are enforced at each sender, which is equivalent to the node or
// link being gone when all traffic flows through wrapped endpoints.
func (inj *Injector) Wrap(ep transport.Endpoint) transport.Endpoint {
	return &Endpoint{inj: inj, inner: ep}
}

// Middleware returns Wrap as a transport.Middleware.
func (inj *Injector) Middleware() transport.Middleware { return inj.Wrap }

// decision is the fate decided for one operation.
type decision struct {
	err       error
	delay     time.Duration
	duplicate bool
	truncate  bool
}

// decide rolls the fate of one operation. All counters advance under the
// injector lock so the decision sequence is a pure function of the
// per-stream issue order.
func (inj *Injector) decide(ctx context.Context, verb Verb, from, to transport.NodeID) decision {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if !inj.enabled {
		return decision{}
	}
	now := inj.clock.Now(ctx)
	inj.opsTo[to]++

	if inj.crashedLocked(from, now) {
		inj.stats.CrashFails++
		inj.traceLocked("crash-src", verb, from, to)
		return decision{err: injectedf("node %d is crashed", from)}
	}
	if inj.crashedLocked(to, now) {
		inj.stats.CrashFails++
		inj.traceLocked("crash-dst", verb, from, to)
		return decision{err: injectedf("node %d is crashed", to)}
	}

	var d decision
	for i := range inj.rules {
		r := &inj.rules[i]
		switch r.Kind {
		case KindCrash, KindRestart:
			continue
		case KindPartition:
			if r.matchPair(from, to) && r.activeAt(now) {
				inj.stats.Partitions++
				inj.traceLocked("partition", verb, from, to)
				return decision{err: injectedf("%d->%d partitioned", from, to)}
			}
			continue
		}
		if !r.matchOp(verb, from, to) || !r.activeAt(now) {
			continue
		}
		inj.matched[i]++
		if r.AfterOps > 0 && inj.matched[i] <= r.AfterOps {
			continue
		}
		if r.Pct < 100 {
			key := seqKey{rule: i, verb: verb, from: from, to: to}
			inj.seq[key]++
			if !hit(inj.seed, uint64(i), inj.seq[key], r.Pct) {
				continue
			}
		}
		switch r.Kind {
		case KindDrop:
			inj.stats.Drops++
			inj.traceLocked("drop", verb, from, to)
			return decision{err: injectedf("dropped %s %d->%d", verb, from, to)}
		case KindDelay:
			inj.stats.Delays++
			inj.traceLocked("delay", verb, from, to)
			d.delay += r.Delay
		case KindDuplicate:
			inj.stats.Duplicates++
			inj.traceLocked("dup", verb, from, to)
			d.duplicate = true
		case KindTruncate:
			inj.stats.Truncates++
			inj.traceLocked("trunc", verb, from, to)
			d.truncate = true
		}
	}
	return d
}

// crashedLocked folds the node's crash/restart events that have fired by
// now: manual state first, then time-triggered events in At order, then
// op-count-triggered events in AfterOps order. Schedules should use one
// trigger dimension per node; when mixed, op-based events win.
func (inj *Injector) crashedLocked(n transport.NodeID, now time.Duration) bool {
	state := inj.manually[n]
	// Rules are scanned twice in trigger order per dimension; schedules are
	// tiny (a handful of rules), so no index is kept.
	for _, dim := range []bool{false, true} { // time events, then op events
		type fired struct {
			key   uint64
			crash bool
		}
		var events []fired
		for i := range inj.rules {
			r := &inj.rules[i]
			if (r.Kind != KindCrash && r.Kind != KindRestart) || r.Node != n {
				continue
			}
			opBased := r.AfterOps > 0
			if opBased != dim {
				continue
			}
			if opBased {
				if inj.opsTo[n] > r.AfterOps {
					events = append(events, fired{key: r.AfterOps, crash: r.Kind == KindCrash})
				}
			} else if now >= r.At {
				events = append(events, fired{key: uint64(r.At), crash: r.Kind == KindCrash})
			}
		}
		for i := 1; i < len(events); i++ { // insertion sort by trigger point
			for j := i; j > 0 && events[j].key < events[j-1].key; j-- {
				events[j], events[j-1] = events[j-1], events[j]
			}
		}
		for _, ev := range events {
			state = ev.crash
		}
	}
	return state
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche of its input, which makes hit() a pure function of its inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hit reports whether the seq-th operation of a stream falls inside pct.
func hit(seed, rule, seq uint64, pct float64) bool {
	h := splitmix64(seed ^ splitmix64(rule^splitmix64(seq)))
	return float64(h>>11)/float64(1<<53)*100 < pct
}

// Endpoint applies an Injector's faults to one node's outbound verbs. Local
// operations — region registration, handler installation, Close — pass
// through untouched.
type Endpoint struct {
	inj   *Injector
	inner transport.Endpoint
}

var _ transport.Endpoint = (*Endpoint)(nil)

// Inner returns the wrapped endpoint.
func (f *Endpoint) Inner() transport.Endpoint { return f.inner }

// ID implements transport.Endpoint.
func (f *Endpoint) ID() transport.NodeID { return f.inner.ID() }

// RegisterRegion implements transport.Endpoint.
func (f *Endpoint) RegisterRegion(id transport.RegionID, size int) ([]byte, error) {
	return f.inner.RegisterRegion(id, size)
}

// DeregisterRegion implements transport.Endpoint.
func (f *Endpoint) DeregisterRegion(id transport.RegionID) error {
	return f.inner.DeregisterRegion(id)
}

// SetHandler implements transport.Endpoint.
func (f *Endpoint) SetHandler(h transport.Handler) { f.inner.SetHandler(h) }

// Close implements transport.Endpoint.
func (f *Endpoint) Close() error { return f.inner.Close() }

// WriteRegion implements transport.Verbs. A truncated write lands a torn
// prefix on the peer before failing — the §IV.D atomicity machinery above
// must make such writes invisible.
func (f *Endpoint) WriteRegion(ctx context.Context, to transport.NodeID, region transport.RegionID, offset int64, data []byte) error {
	d := f.inj.decide(ctx, VerbWrite, f.inner.ID(), to)
	if d.delay > 0 {
		f.inj.clock.Sleep(ctx, d.delay)
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if d.err != nil {
		return d.err
	}
	if d.truncate {
		_ = f.inner.WriteRegion(ctx, to, region, offset, data[:len(data)/2])
		return injectedf("truncated write %d->%d after %d/%d bytes", f.inner.ID(), to, len(data)/2, len(data))
	}
	err := f.inner.WriteRegion(ctx, to, region, offset, data)
	if err == nil && d.duplicate {
		_ = f.inner.WriteRegion(ctx, to, region, offset, data)
	}
	return err
}

// WriteRegionV implements transport.VectoredWriter under the same fault
// schedule as WriteRegion: a truncated write lands a torn prefix of the
// gathered payload (sliced from the iovec, no assembly copy) before failing.
func (f *Endpoint) WriteRegionV(ctx context.Context, to transport.NodeID, region transport.RegionID, offset int64, bufs [][]byte) error {
	d := f.inj.decide(ctx, VerbWrite, f.inner.ID(), to)
	if d.delay > 0 {
		f.inj.clock.Sleep(ctx, d.delay)
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if d.err != nil {
		return d.err
	}
	if d.truncate {
		total := 0
		for _, b := range bufs {
			total += len(b)
		}
		_ = transport.WriteRegionV(ctx, f.inner, to, region, offset, prefixVec(bufs, total/2))
		return injectedf("truncated write %d->%d after %d/%d bytes", f.inner.ID(), to, total/2, total)
	}
	err := transport.WriteRegionV(ctx, f.inner, to, region, offset, bufs)
	if err == nil && d.duplicate {
		_ = transport.WriteRegionV(ctx, f.inner, to, region, offset, bufs)
	}
	return err
}

// prefixVec returns the iovec covering the first n bytes of bufs, slicing
// the boundary buffer instead of copying.
func prefixVec(bufs [][]byte, n int) [][]byte {
	out := make([][]byte, 0, len(bufs))
	for _, b := range bufs {
		if n <= 0 {
			break
		}
		if len(b) > n {
			b = b[:n]
		}
		out = append(out, b)
		n -= len(b)
	}
	return out
}

// ReadRegion implements transport.Verbs. A truncated read charges the fabric
// but discards the short response, as a length-framed receiver would.
func (f *Endpoint) ReadRegion(ctx context.Context, to transport.NodeID, region transport.RegionID, offset int64, n int) ([]byte, error) {
	d := f.inj.decide(ctx, VerbRead, f.inner.ID(), to)
	if d.delay > 0 {
		f.inj.clock.Sleep(ctx, d.delay)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.truncate {
		_, _ = f.inner.ReadRegion(ctx, to, region, offset, n)
		return nil, injectedf("truncated read %d->%d", f.inner.ID(), to)
	}
	out, err := f.inner.ReadRegion(ctx, to, region, offset, n)
	if err == nil && d.duplicate {
		_, _ = f.inner.ReadRegion(ctx, to, region, offset, n)
	}
	return out, err
}

// ReadRegionInto implements transport.ScatterReader under the same fault
// schedule as ReadRegion. A truncated read never touches dst (the short
// response is discarded at the framing layer), honouring the ScatterReader
// ownership contract that dst is released untouched on error.
func (f *Endpoint) ReadRegionInto(ctx context.Context, to transport.NodeID, region transport.RegionID, offset int64, dst []byte) error {
	d := f.inj.decide(ctx, VerbRead, f.inner.ID(), to)
	if d.delay > 0 {
		f.inj.clock.Sleep(ctx, d.delay)
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if d.err != nil {
		return d.err
	}
	if d.truncate {
		_, _ = f.inner.ReadRegion(ctx, to, region, offset, len(dst))
		return injectedf("truncated read %d->%d", f.inner.ID(), to)
	}
	err := transport.ReadRegionInto(ctx, f.inner, to, region, offset, dst)
	if err == nil && d.duplicate {
		_ = transport.ReadRegionInto(ctx, f.inner, to, region, offset, dst)
	}
	return err
}

// Call implements transport.Verbs. A duplicated call executes the handler
// twice — the at-least-once hazard the control-plane protocols must absorb;
// a truncated call never reaches the handler.
func (f *Endpoint) Call(ctx context.Context, to transport.NodeID, payload []byte) ([]byte, error) {
	d := f.inj.decide(ctx, VerbCall, f.inner.ID(), to)
	if d.delay > 0 {
		f.inj.clock.Sleep(ctx, d.delay)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.truncate {
		return nil, injectedf("truncated call %d->%d", f.inner.ID(), to)
	}
	resp, err := f.inner.Call(ctx, to, payload)
	if err == nil && d.duplicate {
		_, _ = f.inner.Call(ctx, to, payload)
	}
	return resp, err
}
