package faulty

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"godm/internal/transport"
)

// Verb selects which transport operations a rule applies to.
type Verb int

// Verbs a rule can match.
const (
	// VerbAny matches every operation.
	VerbAny Verb = iota
	// VerbWrite matches one-sided WriteRegion.
	VerbWrite
	// VerbRead matches one-sided ReadRegion.
	VerbRead
	// VerbCall matches two-sided Call.
	VerbCall
)

// String returns the DSL spelling.
func (v Verb) String() string {
	switch v {
	case VerbAny:
		return "any"
	case VerbWrite:
		return "write"
	case VerbRead:
		return "read"
	case VerbCall:
		return "call"
	default:
		return fmt.Sprintf("verb(%d)", int(v))
	}
}

// Kind labels a fault type.
type Kind int

// Fault kinds.
const (
	// KindDrop fails the operation without delivering it.
	KindDrop Kind = iota + 1
	// KindDelay holds the operation for Rule.Delay first.
	KindDelay
	// KindDuplicate delivers the operation twice.
	KindDuplicate
	// KindTruncate delivers a torn prefix (writes) or nothing (reads,
	// calls), then fails the operation.
	KindTruncate
	// KindPartition refuses every From->To operation inside the window.
	KindPartition
	// KindCrash takes Rule.Node down when the rule triggers.
	KindCrash
	// KindRestart revives Rule.Node when the rule triggers.
	KindRestart
)

// String returns the DSL spelling.
func (k Kind) String() string {
	switch k {
	case KindDrop:
		return "drop"
	case KindDelay:
		return "delay"
	case KindDuplicate:
		return "duplicate"
	case KindTruncate:
		return "truncate"
	case KindPartition:
		return "partition"
	case KindCrash:
		return "crash"
	case KindRestart:
		return "restart"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// AnyNode matches every node in a rule's From/To fields.
const AnyNode transport.NodeID = -1

// Rule is one entry of a fault schedule. The zero value of From/To is node
// 0, not a wildcard — use AnyNode (the parser and helpers do).
//
// For drop/delay/duplicate/truncate rules, AfterOps skips the first AfterOps
// matching operations (an operation-count window start); Start/End bound the
// active time window (Start == End == 0 means always). For crash/restart
// rules, exactly one of At (time trigger) or AfterOps (fires once AfterOps
// operations have been delivered toward Node) should be set.
type Rule struct {
	Kind Kind
	Verb Verb
	From transport.NodeID
	To   transport.NodeID
	// Pct is the probability in percent (0..100] that a matching operation
	// is hit. 100 hits every matching operation deterministically.
	Pct   float64
	Delay time.Duration
	// Node is the crash/restart subject.
	Node transport.NodeID
	// At is the crash/restart trigger time.
	At time.Duration
	// AfterOps: see the type comment.
	AfterOps uint64
	// Start and End bound the active window for non-crash rules.
	Start, End time.Duration
}

// matchOp reports whether a probabilistic rule applies to this operation.
func (r *Rule) matchOp(verb Verb, from, to transport.NodeID) bool {
	if r.Verb != VerbAny && r.Verb != verb {
		return false
	}
	return r.matchPair(from, to)
}

// matchPair matches the rule's endpoints.
func (r *Rule) matchPair(from, to transport.NodeID) bool {
	if r.From != AnyNode && r.From != from {
		return false
	}
	if r.To != AnyNode && r.To != to {
		return false
	}
	return true
}

// activeAt reports whether the rule's time window covers now.
func (r *Rule) activeAt(now time.Duration) bool {
	if r.Start == 0 && r.End == 0 {
		return true
	}
	return now >= r.Start && now < r.End
}

// ParseRules parses a fault schedule script: one rule per line, '#' starts a
// comment, blank lines are skipped. The grammar (case-insensitive):
//
//	drop      PCT% of VERB [from nodeN] [to nodeN] [between t=A..B] [after N ops]
//	delay     DUR [PCT%] of VERB [from nodeN] [to nodeN] [between t=A..B] [after N ops]
//	duplicate PCT% of VERB [...]
//	truncate  PCT% of VERB [...]
//	partition nodeA -> nodeB [between t=A..B]
//	partition nodeA <-> nodeB [between t=A..B]
//	crash     nodeN (at t=T | after N ops)
//	restart   nodeN (at t=T | after N ops)
//
// VERB is write, read, call, or any; DUR and window times use Go duration
// syntax ("2ms", "5s"). For example:
//
//	drop 10% of write to node3 between t=5s..8s
//	crash node2 after 12 ops
func ParseRules(script string) ([]Rule, error) {
	var rules []Rule
	for lineNo, line := range strings.Split(script, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(strings.ToLower(line))
		if len(fields) == 0 {
			continue
		}
		parsed, err := parseRuleLine(fields)
		if err != nil {
			return nil, fmt.Errorf("faulty: line %d: %w", lineNo+1, err)
		}
		rules = append(rules, parsed...)
	}
	return rules, nil
}

// parseRuleLine parses one non-empty rule line into one or two rules (a
// bidirectional partition expands to two).
func parseRuleLine(fields []string) ([]Rule, error) {
	switch fields[0] {
	case "crash", "restart":
		return parseCrashLine(fields)
	case "partition":
		return parsePartitionLine(fields)
	case "drop", "delay", "duplicate", "truncate":
		r, err := parseFaultLine(fields)
		if err != nil {
			return nil, err
		}
		return []Rule{r}, nil
	default:
		return nil, fmt.Errorf("unknown rule kind %q", fields[0])
	}
}

func parseCrashLine(fields []string) ([]Rule, error) {
	kind := KindCrash
	if fields[0] == "restart" {
		kind = KindRestart
	}
	if len(fields) < 4 {
		return nil, fmt.Errorf("%s needs a node and a trigger: %q", fields[0], strings.Join(fields, " "))
	}
	node, err := parseNode(fields[1])
	if err != nil {
		return nil, err
	}
	r := Rule{Kind: kind, Node: node, From: AnyNode, To: AnyNode}
	switch fields[2] {
	case "at":
		at, err := parseTimePoint(fields[3])
		if err != nil {
			return nil, err
		}
		if len(fields) > 4 {
			return nil, fmt.Errorf("trailing tokens after %q", fields[3])
		}
		r.At = at
	case "after":
		if len(fields) != 5 || fields[4] != "ops" {
			return nil, fmt.Errorf("want %q, got %q", fields[0]+" nodeN after N ops", strings.Join(fields, " "))
		}
		n, err := strconv.ParseUint(fields[3], 10, 64)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("bad op count %q", fields[3])
		}
		r.AfterOps = n
	default:
		return nil, fmt.Errorf("want 'at t=T' or 'after N ops', got %q", fields[2])
	}
	return []Rule{r}, nil
}

func parsePartitionLine(fields []string) ([]Rule, error) {
	if len(fields) < 4 {
		return nil, fmt.Errorf("partition needs 'nodeA -> nodeB'")
	}
	a, err := parseNode(fields[1])
	if err != nil {
		return nil, err
	}
	b, err := parseNode(fields[3])
	if err != nil {
		return nil, err
	}
	start, end, rest, err := parseWindow(fields[4:])
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		return nil, fmt.Errorf("trailing tokens %v", rest)
	}
	r := Rule{Kind: KindPartition, From: a, To: b, Start: start, End: end}
	switch fields[2] {
	case "->":
		return []Rule{r}, nil
	case "<->":
		back := r
		back.From, back.To = b, a
		return []Rule{r, back}, nil
	default:
		return nil, fmt.Errorf("want '->' or '<->', got %q", fields[2])
	}
}

func parseFaultLine(fields []string) (Rule, error) {
	r := Rule{From: AnyNode, To: AnyNode, Pct: 100}
	switch fields[0] {
	case "drop":
		r.Kind = KindDrop
	case "delay":
		r.Kind = KindDelay
	case "duplicate":
		r.Kind = KindDuplicate
	case "truncate":
		r.Kind = KindTruncate
	}
	rest := fields[1:]
	if r.Kind == KindDelay {
		if len(rest) == 0 {
			return r, fmt.Errorf("delay needs a duration")
		}
		d, err := time.ParseDuration(rest[0])
		if err != nil {
			return r, fmt.Errorf("bad delay duration %q: %v", rest[0], err)
		}
		r.Delay = d
		rest = rest[1:]
	}
	if len(rest) > 0 && strings.HasSuffix(rest[0], "%") {
		pct, err := strconv.ParseFloat(strings.TrimSuffix(rest[0], "%"), 64)
		if err != nil || pct <= 0 || pct > 100 {
			return r, fmt.Errorf("bad percentage %q", rest[0])
		}
		r.Pct = pct
		rest = rest[1:]
	} else if r.Kind != KindDelay {
		return r, fmt.Errorf("%s needs a percentage (e.g. '10%%')", r.Kind)
	}
	if len(rest) < 2 || rest[0] != "of" {
		return r, fmt.Errorf("want 'of VERB', got %v", rest)
	}
	switch rest[1] {
	case "any":
		r.Verb = VerbAny
	case "write":
		r.Verb = VerbWrite
	case "read":
		r.Verb = VerbRead
	case "call":
		r.Verb = VerbCall
	default:
		return r, fmt.Errorf("unknown verb %q", rest[1])
	}
	rest = rest[2:]
	for len(rest) > 0 {
		switch rest[0] {
		case "from", "to":
			if len(rest) < 2 {
				return r, fmt.Errorf("%q needs a node", rest[0])
			}
			n, err := parseNode(rest[1])
			if err != nil {
				return r, err
			}
			if rest[0] == "from" {
				r.From = n
			} else {
				r.To = n
			}
			rest = rest[2:]
		case "between":
			start, end, remaining, err := parseWindow(rest)
			if err != nil {
				return r, err
			}
			r.Start, r.End = start, end
			rest = remaining
		case "after":
			if len(rest) < 3 || rest[2] != "ops" {
				return r, fmt.Errorf("want 'after N ops', got %v", rest)
			}
			n, err := strconv.ParseUint(rest[1], 10, 64)
			if err != nil || n == 0 {
				return r, fmt.Errorf("bad op count %q", rest[1])
			}
			r.AfterOps = n
			rest = rest[3:]
		default:
			return r, fmt.Errorf("unexpected token %q", rest[0])
		}
	}
	return r, nil
}

// parseWindow consumes a leading "between t=A..B" clause, if present, and
// returns the remaining tokens.
func parseWindow(fields []string) (start, end time.Duration, rest []string, err error) {
	if len(fields) == 0 || fields[0] != "between" {
		return 0, 0, fields, nil
	}
	if len(fields) < 2 {
		return 0, 0, nil, fmt.Errorf("'between' needs 't=A..B'")
	}
	spec := strings.TrimPrefix(fields[1], "t=")
	lo, hi, ok := strings.Cut(spec, "..")
	if !ok {
		return 0, 0, nil, fmt.Errorf("bad window %q, want t=A..B", fields[1])
	}
	if start, err = time.ParseDuration(lo); err != nil {
		return 0, 0, nil, fmt.Errorf("bad window start %q: %v", lo, err)
	}
	if end, err = time.ParseDuration(hi); err != nil {
		return 0, 0, nil, fmt.Errorf("bad window end %q: %v", hi, err)
	}
	if end <= start {
		return 0, 0, nil, fmt.Errorf("empty window %q", fields[1])
	}
	return start, end, fields[2:], nil
}

// parseTimePoint parses "t=5s" (or a bare duration) into a duration.
func parseTimePoint(s string) (time.Duration, error) {
	d, err := time.ParseDuration(strings.TrimPrefix(s, "t="))
	if err != nil {
		return 0, fmt.Errorf("bad time %q: %v", s, err)
	}
	return d, nil
}

// parseNode parses "node3" or "3".
func parseNode(s string) (transport.NodeID, error) {
	n, err := strconv.Atoi(strings.TrimPrefix(s, "node"))
	if err != nil {
		return 0, fmt.Errorf("bad node %q", s)
	}
	return transport.NodeID(n), nil
}

// RandomSchedule derives a reproducible fault schedule from seed for a
// cluster of the given nodes: low-probability drops, delays, duplicates,
// and truncations across the fabric, plus one crash/restart pair on a
// victim node triggered by operation counts, so the same schedule replays
// identically on the simulated and the TCP fabric. victims should exclude
// nodes the scenario cannot lose (the writer driving the workload).
func RandomSchedule(seed int64, victims []transport.NodeID) []Rule {
	rng := rand.New(rand.NewSource(seed))
	pct := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	rules := []Rule{
		{Kind: KindDrop, Verb: VerbAny, From: AnyNode, To: AnyNode, Pct: pct(1, 8)},
		{Kind: KindDelay, Verb: VerbAny, From: AnyNode, To: AnyNode, Pct: pct(5, 20),
			Delay: time.Duration(1+rng.Intn(5)) * time.Millisecond},
		{Kind: KindDuplicate, Verb: VerbCall, From: AnyNode, To: AnyNode, Pct: pct(1, 6)},
		{Kind: KindTruncate, Verb: VerbWrite, From: AnyNode, To: AnyNode, Pct: pct(1, 6)},
	}
	if len(victims) > 0 {
		victim := victims[rng.Intn(len(victims))]
		crashAt := uint64(5 + rng.Intn(30))
		rules = append(rules,
			Rule{Kind: KindCrash, Node: victim, From: AnyNode, To: AnyNode, AfterOps: crashAt},
			Rule{Kind: KindRestart, Node: victim, From: AnyNode, To: AnyNode, AfterOps: crashAt + uint64(10+rng.Intn(40))},
		)
	}
	return rules
}
