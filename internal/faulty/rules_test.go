package faulty

import (
	"reflect"
	"testing"
	"time"
)

func TestParseRulesFullScript(t *testing.T) {
	script := `
# chaos schedule for the replication scenario
drop 10% of write to node3 between t=5s..8s
delay 2ms 50% of read from node1
duplicate 5% of call
truncate 3% of write from node2 to node4
partition node1 -> node2
partition node3 <-> node4 between t=1s..2s
crash node2 at t=5s
restart node2 at t=9s
crash node5 after 12 ops
`
	rules, err := ParseRules(script)
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Kind: KindDrop, Verb: VerbWrite, From: AnyNode, To: 3, Pct: 10,
			Start: 5 * time.Second, End: 8 * time.Second},
		{Kind: KindDelay, Verb: VerbRead, From: 1, To: AnyNode, Pct: 50, Delay: 2 * time.Millisecond},
		{Kind: KindDuplicate, Verb: VerbCall, From: AnyNode, To: AnyNode, Pct: 5},
		{Kind: KindTruncate, Verb: VerbWrite, From: 2, To: 4, Pct: 3},
		{Kind: KindPartition, From: 1, To: 2},
		{Kind: KindPartition, From: 3, To: 4, Start: time.Second, End: 2 * time.Second},
		{Kind: KindPartition, From: 4, To: 3, Start: time.Second, End: 2 * time.Second},
		{Kind: KindCrash, Node: 2, From: AnyNode, To: AnyNode, At: 5 * time.Second},
		{Kind: KindRestart, Node: 2, From: AnyNode, To: AnyNode, At: 9 * time.Second},
		{Kind: KindCrash, Node: 5, From: AnyNode, To: AnyNode, AfterOps: 12},
	}
	if !reflect.DeepEqual(rules, want) {
		t.Fatalf("ParseRules mismatch:\n got  %+v\n want %+v", rules, want)
	}
}

func TestParseRulesDelayWithoutPctDefaults100(t *testing.T) {
	rules, err := ParseRules("delay 1ms of any")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Pct != 100 || rules[0].Delay != time.Millisecond {
		t.Fatalf("got %+v", rules)
	}
}

func TestParseRulesAfterOpsClause(t *testing.T) {
	rules, err := ParseRules("drop 100% of call to node2 after 4 ops")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].AfterOps != 4 {
		t.Fatalf("got %+v", rules)
	}
}

func TestParseRulesErrors(t *testing.T) {
	for _, script := range []string{
		"drop of write",                 // missing percentage
		"drop 0% of write",              // pct out of range
		"drop 101% of write",            // pct out of range
		"drop 10% of teleport",          // unknown verb
		"drop 10% write",                // missing 'of'
		"delay of write",                // missing duration
		"partition node1 node2",         // missing arrow
		"partition node1 -> bogus",      // bad node
		"crash node1",                   // missing trigger
		"crash node1 at",                // missing time
		"crash node1 after 0 ops",       // zero count
		"crash node1 after 3 potatoes",  // bad unit
		"explode 50% of write",          // unknown kind
		"drop 10% of write between t=8s..5s", // empty window
	} {
		if _, err := ParseRules(script); err == nil {
			t.Errorf("ParseRules(%q) accepted invalid script", script)
		}
	}
}

func TestParseRulesIsCaseInsensitive(t *testing.T) {
	rules, err := ParseRules("DROP 10% OF Write TO Node3")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Kind != KindDrop || rules[0].To != 3 {
		t.Fatalf("got %+v", rules)
	}
}

func TestRuleMatchers(t *testing.T) {
	r := Rule{Kind: KindDrop, Verb: VerbWrite, From: 1, To: AnyNode, Pct: 100}
	if !r.matchOp(VerbWrite, 1, 9) {
		t.Errorf("rule should match write 1->9")
	}
	if r.matchOp(VerbRead, 1, 9) {
		t.Errorf("rule must not match reads")
	}
	if r.matchOp(VerbWrite, 2, 9) {
		t.Errorf("rule must not match other sources")
	}
	any := Rule{Verb: VerbAny, From: AnyNode, To: AnyNode}
	if !any.matchOp(VerbCall, 5, 6) {
		t.Errorf("wildcard rule should match everything")
	}
}

func TestRuleActiveAt(t *testing.T) {
	always := Rule{}
	if !always.activeAt(0) || !always.activeAt(time.Hour) {
		t.Errorf("zero window must mean always-active")
	}
	windowed := Rule{Start: time.Second, End: 2 * time.Second}
	for _, tc := range []struct {
		at   time.Duration
		want bool
	}{
		{0, false},
		{time.Second, true},
		{1500 * time.Millisecond, true},
		{2 * time.Second, false},
	} {
		if got := windowed.activeAt(tc.at); got != tc.want {
			t.Errorf("activeAt(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}
