package faulty

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"godm/internal/transport"
)

// memEndpoint is a loopback fabric for injector tests: every node shares one
// map of regions and handlers, all operations succeed.
type memFabric struct {
	mu       sync.Mutex
	regions  map[transport.NodeID]map[transport.RegionID][]byte
	handlers map[transport.NodeID]transport.Handler
	calls    map[transport.NodeID]int // handler invocations per node
	writes   map[transport.NodeID]int // writes landed per node
}

func newMemFabric() *memFabric {
	return &memFabric{
		regions:  map[transport.NodeID]map[transport.RegionID][]byte{},
		handlers: map[transport.NodeID]transport.Handler{},
		calls:    map[transport.NodeID]int{},
		writes:   map[transport.NodeID]int{},
	}
}

type memEndpoint struct {
	f  *memFabric
	id transport.NodeID
}

func (f *memFabric) attach(id transport.NodeID) *memEndpoint {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.regions[id] = map[transport.RegionID][]byte{}
	return &memEndpoint{f: f, id: id}
}

func (e *memEndpoint) ID() transport.NodeID { return e.id }

func (e *memEndpoint) RegisterRegion(id transport.RegionID, size int) ([]byte, error) {
	e.f.mu.Lock()
	defer e.f.mu.Unlock()
	buf := make([]byte, size)
	e.f.regions[e.id][id] = buf
	return buf, nil
}

func (e *memEndpoint) DeregisterRegion(id transport.RegionID) error {
	e.f.mu.Lock()
	defer e.f.mu.Unlock()
	delete(e.f.regions[e.id], id)
	return nil
}

func (e *memEndpoint) SetHandler(h transport.Handler) {
	e.f.mu.Lock()
	e.f.handlers[e.id] = h
	e.f.mu.Unlock()
}

func (e *memEndpoint) Close() error { return nil }

func (e *memEndpoint) WriteRegion(_ context.Context, to transport.NodeID, region transport.RegionID, offset int64, data []byte) error {
	e.f.mu.Lock()
	defer e.f.mu.Unlock()
	buf, ok := e.f.regions[to][region]
	if !ok {
		return transport.ErrNoRegion
	}
	copy(buf[offset:], data)
	e.f.writes[to]++
	return nil
}

func (e *memEndpoint) ReadRegion(_ context.Context, to transport.NodeID, region transport.RegionID, offset int64, n int) ([]byte, error) {
	e.f.mu.Lock()
	defer e.f.mu.Unlock()
	buf, ok := e.f.regions[to][region]
	if !ok {
		return nil, transport.ErrNoRegion
	}
	out := make([]byte, n)
	copy(out, buf[offset:])
	return out, nil
}

func (e *memEndpoint) Call(ctx context.Context, to transport.NodeID, payload []byte) ([]byte, error) {
	e.f.mu.Lock()
	h := e.f.handlers[to]
	e.f.calls[to]++
	e.f.mu.Unlock()
	if h == nil {
		return nil, transport.ErrNoHandler
	}
	return h(ctx, e.id, payload)
}

// stillClock pins injector time to a settable instant, so window tests do not
// depend on the wall clock.
type stillClock struct {
	mu    sync.Mutex
	now   time.Duration
	slept []time.Duration
}

func (c *stillClock) Now(context.Context) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *stillClock) Sleep(_ context.Context, d time.Duration) {
	c.mu.Lock()
	c.slept = append(c.slept, d)
	c.mu.Unlock()
}

func (c *stillClock) set(d time.Duration) {
	c.mu.Lock()
	c.now = d
	c.mu.Unlock()
}

func TestInjectedErrorMatchesBothSentinels(t *testing.T) {
	err := injectedf("boom")
	if !errors.Is(err, ErrInjected) {
		t.Errorf("injected error does not match ErrInjected")
	}
	if !errors.Is(err, transport.ErrUnreachable) {
		t.Errorf("injected error does not match transport.ErrUnreachable")
	}
	if errors.Is(err, transport.ErrClosed) {
		t.Errorf("injected error must not match unrelated sentinels")
	}
}

func TestDropRuleAlwaysFires(t *testing.T) {
	fab := newMemFabric()
	inj := New(1)
	inj.AddRule(Rule{Kind: KindDrop, Verb: VerbWrite, From: AnyNode, To: 2, Pct: 100})
	ep1 := inj.Wrap(fab.attach(1))
	fab.attach(2)
	ctx := context.Background()

	if err := ep1.WriteRegion(ctx, 2, 7, 0, []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write to node2: got %v, want injected drop", err)
	}
	// Other targets and verbs are untouched.
	fab.attach(3)
	if _, err := ep1.(*Endpoint).Inner().RegisterRegion(9, 16); err != nil {
		t.Fatal(err)
	}
	if err := ep1.WriteRegion(ctx, 3, 0, 0, nil); !errors.Is(err, transport.ErrNoRegion) {
		t.Fatalf("write to node3 should reach the fabric, got %v", err)
	}
	if got := inj.Stats().Drops; got != 1 {
		t.Errorf("Drops = %d, want 1", got)
	}
}

func TestDelayUsesClock(t *testing.T) {
	fab := newMemFabric()
	clk := &stillClock{}
	inj := New(1, WithClock(clk))
	inj.AddRule(Rule{Kind: KindDelay, Verb: VerbAny, From: AnyNode, To: AnyNode, Pct: 100, Delay: 3 * time.Millisecond})
	ep := inj.Wrap(fab.attach(1))
	tgt := fab.attach(2)
	if _, err := tgt.RegisterRegion(1, 8); err != nil {
		t.Fatal(err)
	}
	if err := ep.WriteRegion(context.Background(), 2, 1, 0, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if len(clk.slept) != 1 || clk.slept[0] != 3*time.Millisecond {
		t.Errorf("slept %v, want one 3ms sleep", clk.slept)
	}
	if fab.writes[2] != 1 {
		t.Errorf("delayed write did not land")
	}
}

func TestDuplicateCallExecutesHandlerTwice(t *testing.T) {
	fab := newMemFabric()
	inj := New(1)
	inj.AddRule(Rule{Kind: KindDuplicate, Verb: VerbCall, From: AnyNode, To: AnyNode, Pct: 100})
	ep := inj.Wrap(fab.attach(1))
	tgt := fab.attach(2)
	tgt.SetHandler(func(context.Context, transport.NodeID, []byte) ([]byte, error) { return []byte("ok"), nil })

	resp, err := ep.Call(context.Background(), 2, []byte("ping"))
	if err != nil || string(resp) != "ok" {
		t.Fatalf("Call = %q, %v", resp, err)
	}
	if fab.calls[2] != 2 {
		t.Errorf("handler ran %d times, want 2 (duplicate delivery)", fab.calls[2])
	}
}

func TestTruncateWriteLandsTornPrefix(t *testing.T) {
	fab := newMemFabric()
	inj := New(1)
	inj.AddRule(Rule{Kind: KindTruncate, Verb: VerbWrite, From: AnyNode, To: AnyNode, Pct: 100})
	ep := inj.Wrap(fab.attach(1))
	tgt := fab.attach(2)
	buf, err := tgt.RegisterRegion(1, 8)
	if err != nil {
		t.Fatal(err)
	}

	err = ep.WriteRegion(context.Background(), 2, 1, 0, []byte("ABCDEFGH"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("truncated write: got %v, want injected error", err)
	}
	if string(buf) != "ABCD\x00\x00\x00\x00" {
		t.Errorf("region = %q, want torn prefix %q", buf, "ABCD\x00\x00\x00\x00")
	}
}

func TestPartitionIsDirectional(t *testing.T) {
	fab := newMemFabric()
	inj := New(1)
	rules, err := ParseRules("partition node1 -> node2")
	if err != nil {
		t.Fatal(err)
	}
	inj.AddRules(rules)
	ep1 := inj.Wrap(fab.attach(1))
	ep2 := inj.Wrap(fab.attach(2))
	ctx := context.Background()
	if _, err := ep1.RegisterRegion(1, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := ep2.RegisterRegion(2, 8); err != nil {
		t.Fatal(err)
	}

	if err := ep1.WriteRegion(ctx, 2, 2, 0, []byte("x")); !errors.Is(err, transport.ErrUnreachable) {
		t.Errorf("1->2 should be partitioned, got %v", err)
	}
	if err := ep2.WriteRegion(ctx, 1, 1, 0, []byte("x")); err != nil {
		t.Errorf("2->1 should be open, got %v", err)
	}
}

func TestCrashAfterOpsAndRestart(t *testing.T) {
	fab := newMemFabric()
	inj := New(1)
	if err := inj.Load("crash node2 after 3 ops\nrestart node2 after 5 ops"); err != nil {
		t.Fatal(err)
	}
	ep := inj.Wrap(fab.attach(1))
	tgt := fab.attach(2)
	if _, err := tgt.RegisterRegion(1, 64); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var results []bool
	for i := 0; i < 8; i++ {
		err := ep.WriteRegion(ctx, 2, 1, 0, []byte("x"))
		results = append(results, err == nil)
	}
	// Ops 1..3 succeed, 4..5 hit the crash, 6+ succeed after restart.
	want := []bool{true, true, true, false, false, true, true, true}
	if !reflect.DeepEqual(results, want) {
		t.Errorf("op outcomes = %v, want %v", results, want)
	}
}

func TestManualCrashRestart(t *testing.T) {
	fab := newMemFabric()
	inj := New(1)
	ep := inj.Wrap(fab.attach(1))
	tgt := fab.attach(2)
	if _, err := tgt.RegisterRegion(1, 8); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	inj.Crash(2)
	if err := ep.WriteRegion(ctx, 2, 1, 0, []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write to crashed node: got %v", err)
	}
	inj.Restart(2)
	if err := ep.WriteRegion(ctx, 2, 1, 0, []byte("x")); err != nil {
		t.Fatalf("write after restart: %v", err)
	}
}

func TestSetEnabledHealsEverything(t *testing.T) {
	fab := newMemFabric()
	inj := New(1)
	inj.AddRule(Rule{Kind: KindDrop, Verb: VerbAny, From: AnyNode, To: AnyNode, Pct: 100})
	inj.Crash(2)
	ep := inj.Wrap(fab.attach(1))
	tgt := fab.attach(2)
	if _, err := tgt.RegisterRegion(1, 8); err != nil {
		t.Fatal(err)
	}

	inj.SetEnabled(false)
	if err := ep.WriteRegion(context.Background(), 2, 1, 0, []byte("x")); err != nil {
		t.Fatalf("disabled injector must pass everything through, got %v", err)
	}
}

func TestTimeWindowGatesRule(t *testing.T) {
	fab := newMemFabric()
	clk := &stillClock{}
	inj := New(1, WithClock(clk))
	if err := inj.Load("drop 100% of write to node2 between t=5s..8s"); err != nil {
		t.Fatal(err)
	}
	ep := inj.Wrap(fab.attach(1))
	tgt := fab.attach(2)
	if _, err := tgt.RegisterRegion(1, 8); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for _, tc := range []struct {
		at   time.Duration
		drop bool
	}{
		{4 * time.Second, false},
		{5 * time.Second, true},
		{7 * time.Second, true},
		{8 * time.Second, false},
	} {
		clk.set(tc.at)
		err := ep.WriteRegion(ctx, 2, 1, 0, []byte("x"))
		if dropped := errors.Is(err, ErrInjected); dropped != tc.drop {
			t.Errorf("at %v: dropped=%v, want %v (err=%v)", tc.at, dropped, tc.drop, err)
		}
	}
}

// TestDecisionSequenceIsDeterministic replays the same operation sequence
// through two injectors with the same seed and requires identical fates, and
// through a third with another seed expecting a different fate pattern.
func TestDecisionSequenceIsDeterministic(t *testing.T) {
	run := func(seed int64) []string {
		fab := newMemFabric()
		inj := New(seed)
		inj.AddRule(Rule{Kind: KindDrop, Verb: VerbAny, From: AnyNode, To: AnyNode, Pct: 30})
		eps := map[transport.NodeID]transport.Endpoint{}
		for _, id := range []transport.NodeID{1, 2, 3} {
			inner := fab.attach(id)
			if _, err := inner.RegisterRegion(1, 32); err != nil {
				t.Fatal(err)
			}
			eps[id] = inj.Wrap(inner)
		}
		ctx := context.Background()
		var fates []string
		for i := 0; i < 200; i++ {
			from := transport.NodeID(1 + i%3)
			to := transport.NodeID(1 + (i+1)%3)
			err := eps[from].WriteRegion(ctx, to, 1, 0, []byte("p"))
			fates = append(fates, fmt.Sprintf("%d->%d:%v", from, to, errors.Is(err, ErrInjected)))
		}
		return fates
	}

	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different decision sequences")
	}
	c := run(43)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical decision sequences (suspicious)")
	}
	// ~30% of 200 ops should be dropped; allow a generous band.
	drops := 0
	for _, f := range a {
		if f[len(f)-4:] == "true" {
			drops++
		}
	}
	if drops < 30 || drops > 90 {
		t.Errorf("30%% drop rule hit %d/200 ops, outside [30,90]", drops)
	}
}

func TestTraceReplaysIdentically(t *testing.T) {
	run := func() []string {
		fab := newMemFabric()
		inj := New(7)
		inj.AddRules(RandomSchedule(7, []transport.NodeID{2, 3}))
		eps := map[transport.NodeID]transport.Endpoint{}
		for _, id := range []transport.NodeID{1, 2, 3} {
			inner := fab.attach(id)
			if _, err := inner.RegisterRegion(1, 32); err != nil {
				t.Fatal(err)
			}
			eps[id] = inj.Wrap(inner)
		}
		ctx := context.Background()
		for i := 0; i < 100; i++ {
			to := transport.NodeID(1 + (i+1)%3)
			_ = eps[1+transport.NodeID(i%3)].WriteRegion(ctx, to, 1, 0, []byte("q"))
		}
		return inj.Trace()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatalf("RandomSchedule injected nothing over 100 ops")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("trace replay differs:\n run1: %v\n run2: %v", a, b)
	}
}

func TestRandomScheduleIsSeedStable(t *testing.T) {
	a := RandomSchedule(99, []transport.NodeID{1, 2, 3})
	b := RandomSchedule(99, []transport.NodeID{1, 2, 3})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("RandomSchedule not deterministic for equal seeds")
	}
	c := RandomSchedule(100, []transport.NodeID{1, 2, 3})
	if reflect.DeepEqual(a, c) {
		t.Fatalf("RandomSchedule identical across different seeds")
	}
	var crash, restart bool
	for _, r := range a {
		crash = crash || r.Kind == KindCrash
		restart = restart || r.Kind == KindRestart
	}
	if !crash || !restart {
		t.Errorf("schedule lacks crash/restart pair: %+v", a)
	}
}
