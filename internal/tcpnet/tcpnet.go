// Package tcpnet implements transport.Endpoint over real TCP sockets, so a
// disaggregated memory cluster can run as ordinary processes on commodity
// networks. It preserves the verbs semantics of the simulated fabric —
// one-sided region writes/reads execute against pre-registered buffers
// without invoking the application handler — while trading RDMA's kernel
// bypass for portability (the paper's §IV.G notes TCP and RDMA share the
// connected, reliable, in-order model).
//
// # Wire format
//
// Every request carries a 64-bit request ID that the peer echoes back in the
// matching response, so many RPCs can be in flight on one connection and
// responses may return in any order (all integers big-endian):
//
//	request:  op(1) reqID(8) from(8) region(4) offset(8) n(4) payloadLen(4) payload
//	response: reqID(8) status(1) payloadLen(4) payload
//
// Payloads above 64 MiB are rejected on the send side with ErrFrameTooLarge
// before a byte hits the wire; a receiver treats an oversized length prefix
// as a protocol violation and drops the connection.
//
// # Concurrency model
//
// Like an RDMA reliable connection with many outstanding verbs, each pooled
// connection is split into a send side (a mutex held only for the duration
// of one frame write) and a single demultiplexing reader goroutine that
// routes responses to per-request channels. Unlimited RPCs to the same peer
// proceed concurrently; none waits for another's round trip. Because a
// single connection's frame-processing loops are themselves serial, each
// peer gets a small stripe of such connections ("lanes", like a pool of RC
// queue pairs; WithConnsPerPeer) and requests round-robin across them, and
// flush syscalls are coalesced: senders only buffer their frame, and a
// per-connection flush goroutine pushes everything the current burst of
// runnable senders wrote out in one syscall (doorbell batching, in RDMA
// terms).
//
// On the serving side, one-sided opWrite/opRead frames are executed inline
// in the connection's read loop — so one-sided operations on a connection
// execute in exactly the order they were sent, mirroring RC QP ordering —
// while two-sided opCall frames are dispatched to worker goroutines bounded
// by a configurable endpoint-wide cap (WithCallConcurrency). With a cap of 1
// control-plane calls are delivered strictly serially in arrival order;
// with a larger cap, calls whose issuer did not wait for a prior completion
// may be handled concurrently, exactly as multiple outstanding SENDs would.
// Registered regions are guarded by an RWMutex so one-sided operations from
// many connections proceed in parallel. As with real RDMA, concurrently
// accessing overlapping bytes of one region is the application's race to
// avoid.
//
// Broken pooled connections are redialled with exponential backoff instead
// of failing the caller, and every verb honors its context: cancellation or
// deadline expiry abandons the wait immediately (the late response, if any,
// is discarded by the demux reader). A retry is only ever attempted when the
// request frame provably never fully reached the socket: the transport
// counts every byte handed to the kernel and records each frame's end offset
// in the outbound stream, so a frame is re-sent only if the connection died
// before all of its bytes were written — operations are never duplicated on
// the peer by the transport itself.
package tcpnet

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"godm/internal/metrics"
	"godm/internal/transport"
)

const (
	opWrite = 1
	opRead  = 2
	opCall  = 3
)

const (
	statusOK          = 0
	statusNoRegion    = 1
	statusOutOfBounds = 2
	statusNoHandler   = 3
	statusAppError    = 4
)

const (
	reqHeaderSize  = 37
	respHeaderSize = 13
)

// maxPayload bounds a single frame (transport.MaxFrameSize, 64 MiB) to keep
// a malformed peer from forcing huge allocations. The bound is shared with
// the simulated fabric so the two cannot drift on the contract.
const maxPayload = transport.MaxFrameSize

// ErrFrameTooLarge is returned before anything is written to the wire when a
// single operation's payload exceeds the 64 MiB frame limit. Callers should
// split such transfers into smaller operations.
var ErrFrameTooLarge = transport.ErrFrameTooLarge

// DefaultCallConcurrency is the endpoint-wide cap on concurrently executing
// control-plane handlers unless overridden with WithCallConcurrency.
const DefaultCallConcurrency = 32

const (
	// retryAttempts bounds how many times an operation is retried when its
	// request could not be sent (dead pooled connection, dial failure).
	retryAttempts = 3
	// retryBackoff is the base delay between attempts; it doubles each time.
	retryBackoff = 20 * time.Millisecond
)

// Option configures an Endpoint at Listen time.
type Option func(*Endpoint)

// WithCallConcurrency caps how many control-plane (Call) handlers may run
// concurrently across all inbound connections. n < 1 is treated as 1; a cap
// of 1 restores strictly serial, in-arrival-order call delivery.
func WithCallConcurrency(n int) Option {
	return func(e *Endpoint) {
		if n < 1 {
			n = 1
		}
		e.callCap = n
	}
}

// DefaultConnsPerPeer caps the default number of striped connections
// ("lanes") kept per peer, like a small pool of RC queue pairs to one remote
// NIC. The actual default is min(DefaultConnsPerPeer, GOMAXPROCS): extra
// lanes only pay off when their frame-processing loops can run in parallel.
const DefaultConnsPerPeer = 8

// WithConnsPerPeer sets how many TCP connections are pooled per peer.
// Requests round-robin across lanes, so the per-connection read/demux loops
// — the serial bottleneck once RPCs are multiplexed — run in parallel.
// n < 1 is treated as 1 (a single shared connection).
func WithConnsPerPeer(n int) Option {
	return func(e *Endpoint) {
		if n < 1 {
			n = 1
		}
		e.lanes = n
	}
}

// WithMetrics mounts the endpoint's instrumentation on reg instead of a
// free-floating per-node registry, so a daemon can hang transport metrics
// under its unified metrics tree.
func WithMetrics(reg *metrics.Registry) Option {
	return func(e *Endpoint) {
		if reg != nil {
			e.reg = reg
		}
	}
}

// Endpoint is one node's TCP attachment.
type Endpoint struct {
	id       transport.NodeID
	listener net.Listener
	callCap  int
	callSem  chan struct{}
	closedCh chan struct{}

	// baseCtx is the server-side request context handed to inbound
	// control-plane handlers; it is cancelled when the endpoint closes.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// regMu guards the server data plane: registered regions and the
	// control-plane handler. One-sided ops take only the read lock, so they
	// no longer serialize on the endpoint's connection-pool mutex.
	regMu   sync.RWMutex
	regions map[transport.RegionID][]byte
	handler transport.Handler

	// mu guards connection-pool and lifecycle state.
	mu      sync.Mutex
	peers   map[transport.NodeID]string
	conns   map[laneKey]*clientConn
	inbound map[net.Conn]struct{}
	closed  bool

	lanes int
	rr    atomic.Uint64

	reg        *metrics.Registry
	inflight   *metrics.Gauge
	rtt        *metrics.Histogram
	bytesTx    *metrics.Counter
	bytesRx    *metrics.Counter
	reconnects *metrics.Counter
	served     *metrics.Counter

	wg sync.WaitGroup
}

var _ transport.Endpoint = (*Endpoint)(nil)

// laneKey names one striped connection to one peer.
type laneKey struct {
	to   transport.NodeID
	lane int
}

// rpcResult is what the demux reader delivers to a waiting round trip.
// retry marks failures where the request provably never fully left this host
// (the connection died before all of its frame's bytes were handed to the
// kernel), so the operation can be re-sent without risking duplicate
// execution on the peer.
type rpcResult struct {
	status  byte
	payload []byte
	err     error
	retry   bool
}

// countingConn wraps the outbound socket and counts every byte actually
// handed to the kernel — including bufio's automatic overflow flushes and
// its large-write bypass, not just the explicit flush-goroutine syscalls.
// All writes (and the failConn read of n) happen under clientConn.wmu, so a
// plain field suffices.
type countingConn struct {
	net.Conn
	n int64 // bytes handed to the kernel since dial
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.n += int64(n)
	return n, err
}

// frameRef remembers where one request frame ends in the outbound byte
// stream, so a connection failure can tell frames that were fully handed to
// the kernel (possibly delivered and executed — never retried) from frames
// the socket provably never finished accepting (safe to retry: the peer can
// at most have seen a truncated frame, which it discards without executing).
type frameRef struct {
	id  uint64
	end int64 // stream offset one past the frame's last byte
}

// clientConn is one pooled outbound connection. The write side is guarded by
// wmu (held only while one frame is written); responses are consumed by a
// single reader goroutine that routes them to pending by request ID.
//
// Flushes are coalesced: senders only mark the writer dirty, and the
// connection's flush goroutine pushes every frame buffered by the current
// burst of runnable senders out in one syscall. unflushed records the stream
// end offset of every frame not yet confirmed flushed; because cw counts the
// bytes the kernel has actually accepted (bufio may flush on its own when
// the buffer overflows), a failure marks exactly the frames whose end offset
// lies beyond the accepted-byte count as retryable — those provably never
// reached the peer intact — while frames fully handed to the kernel surface
// the error to their callers.
type clientConn struct {
	c  net.Conn
	cw *countingConn // the bufio.Writer's sink; wraps c

	wmu       sync.Mutex
	w         *bufio.Writer
	unflushed []frameRef
	wdead     bool          // write side failed; senders must not buffer more frames
	dirty     chan struct{} // cap 1: "buffered frames await a flush"
	done      chan struct{} // closed exactly once by failConn

	pmu     sync.Mutex
	pending map[uint64]chan rpcResult
	nextID  uint64
	dead    bool
	deadErr error
}

// resultChanPool recycles the buffered per-request response channels.
var resultChanPool = sync.Pool{New: func() any { return make(chan rpcResult, 1) }}

// register allocates a request ID and its response channel.
func (cc *clientConn) register() (uint64, chan rpcResult, error) {
	cc.pmu.Lock()
	defer cc.pmu.Unlock()
	if cc.dead {
		return 0, nil, cc.deadErr
	}
	cc.nextID++
	id := cc.nextID
	ch := resultChanPool.Get().(chan rpcResult)
	cc.pending[id] = ch
	return id, ch, nil
}

// cancel abandons a pending request (context fired, or send failed). If the
// entry was already claimed by the reader a send may still be in flight, so
// the channel is abandoned rather than pooled.
func (cc *clientConn) cancel(id uint64, ch chan rpcResult) {
	cc.pmu.Lock()
	_, mine := cc.pending[id]
	if mine {
		delete(cc.pending, id)
	}
	cc.pmu.Unlock()
	if mine {
		resultChanPool.Put(ch)
	}
}

// Listen creates an endpoint for node id serving on addr (e.g. ":7400").
// Use Addr to discover the bound address when addr has port 0.
func Listen(id transport.NodeID, addr string, opts ...Option) (*Endpoint, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	e := &Endpoint{
		id:       id,
		listener: l,
		callCap:  DefaultCallConcurrency,
		lanes:    min(DefaultConnsPerPeer, runtime.GOMAXPROCS(0)),
		closedCh: make(chan struct{}),
		regions:  map[transport.RegionID][]byte{},
		peers:    map[transport.NodeID]string{},
		conns:    map[laneKey]*clientConn{},
		inbound:  map[net.Conn]struct{}{},
		reg:      metrics.NewRegistry(fmt.Sprintf("tcpnet/node-%d", id)),
	}
	for _, o := range opts {
		o(e)
	}
	e.baseCtx, e.baseCancel = context.WithCancel(context.Background())
	e.callSem = make(chan struct{}, e.callCap)
	e.inflight = e.reg.Gauge("rpc_inflight")
	e.rtt = e.reg.Histogram("rpc_rtt")
	e.bytesTx = e.reg.Counter("bytes_tx")
	e.bytesRx = e.reg.Counter("bytes_rx")
	e.reconnects = e.reg.Counter("reconnect_attempts")
	e.served = e.reg.Counter("requests_served")
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the listener's address.
func (e *Endpoint) Addr() string { return e.listener.Addr().String() }

// ID implements transport.Endpoint.
func (e *Endpoint) ID() transport.NodeID { return e.id }

// Metrics exposes the endpoint's transport instrumentation: the rpc_inflight
// gauge, rpc_rtt latency histogram, bytes_tx/bytes_rx counters, the
// reconnect_attempts counter, and the requests_served counter.
func (e *Endpoint) Metrics() *metrics.Registry { return e.reg }

// AddPeer records the address of node id for outbound operations.
func (e *Endpoint) AddPeer(id transport.NodeID, addr string) {
	e.mu.Lock()
	e.peers[id] = addr
	e.mu.Unlock()
}

// RegisterRegion implements transport.Endpoint.
func (e *Endpoint) RegisterRegion(id transport.RegionID, size int) ([]byte, error) {
	if size <= 0 {
		return nil, fmt.Errorf("tcpnet: region size %d must be positive", size)
	}
	if e.isClosed() {
		return nil, transport.ErrClosed
	}
	e.regMu.Lock()
	defer e.regMu.Unlock()
	if _, ok := e.regions[id]; ok {
		return nil, fmt.Errorf("tcpnet: region %d already registered", id)
	}
	buf := make([]byte, size)
	e.regions[id] = buf
	return buf, nil
}

// DeregisterRegion implements transport.Endpoint.
func (e *Endpoint) DeregisterRegion(id transport.RegionID) error {
	e.regMu.Lock()
	defer e.regMu.Unlock()
	if _, ok := e.regions[id]; !ok {
		return fmt.Errorf("%w: region %d", transport.ErrNoRegion, id)
	}
	delete(e.regions, id)
	return nil
}

// SetHandler implements transport.Endpoint.
func (e *Endpoint) SetHandler(h transport.Handler) {
	e.regMu.Lock()
	e.handler = h
	e.regMu.Unlock()
}

func (e *Endpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// Close implements transport.Endpoint.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.conns = map[laneKey]*clientConn{}
	inbound := make([]net.Conn, 0, len(e.inbound))
	for c := range e.inbound {
		inbound = append(inbound, c)
	}
	e.mu.Unlock()
	close(e.closedCh)
	e.baseCancel()
	err := e.listener.Close()
	for _, cc := range conns {
		_ = cc.c.Close()
	}
	for _, c := range inbound {
		_ = c.Close()
	}
	e.wg.Wait()
	return err
}

func (e *Endpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.serveConn(conn)
		}()
	}
}

func (e *Endpoint) serveConn(conn net.Conn) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		_ = conn.Close()
		return
	}
	e.inbound[conn] = struct{}{}
	e.mu.Unlock()
	// Response frames are written by the read loop (one-sided fast path) and
	// by call workers; cw serializes them and coalesces flushes. callWG is
	// drained before the connection is torn down so workers never write to a
	// freed buffer.
	cw := &connWriter{
		w:     bufio.NewWriterSize(conn, 64<<10),
		dirty: make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		cw.flushLoop()
	}()
	var callWG sync.WaitGroup
	defer func() {
		callWG.Wait()
		close(cw.done)
		e.mu.Lock()
		delete(e.inbound, conn)
		e.mu.Unlock()
		_ = conn.Close()
	}()
	r := bufio.NewReaderSize(conn, 64<<10)
	for {
		// Flush deferred responses before the read can block: as long as
		// more pipelined requests are already buffered, responses keep
		// accumulating and go out in one syscall.
		if r.Buffered() == 0 {
			if err := cw.flushPending(); err != nil {
				return
			}
		}
		req, err := readRequest(r)
		if err != nil {
			return // peer hung up or sent garbage
		}
		e.bytesRx.Add(int64(reqHeaderSize + len(req.payload)))
		e.served.Inc()
		switch req.op {
		case opRead, opWrite:
			// One-sided fast path: executed inline, in arrival order, and not
			// flushed — the loop top flushes once the request burst drains.
			// opRead copies the region bytes into a pooled buffer so the
			// regions read lock is released before the response is framed: a
			// slow peer stalling the socket write must not pin the lock and
			// wedge registration or one-sided traffic endpoint-wide.
			var status byte
			var resp []byte
			var pooled bool
			if req.op == opRead && req.n > maxPayload {
				status = statusAppError
				resp = []byte(fmt.Sprintf("read of %d bytes exceeds %d-byte frame limit", req.n, maxPayload))
			} else {
				status, resp, pooled = e.execute(e.baseCtx, req, true)
			}
			werr := e.respond(cw, req.id, status, resp, false)
			if pooled {
				putBuf(resp)
			}
			if req.pooled {
				putBuf(req.payload)
			}
			if werr != nil {
				return
			}
		case opCall:
			// Two-sided calls go to bounded workers so a slow handler never
			// stalls one-sided traffic behind it. Acquiring the semaphore
			// here (not in the worker) applies backpressure: a saturated
			// server stops reading new frames from this connection.
			select {
			case e.callSem <- struct{}{}:
			case <-e.closedCh:
				return
			}
			callWG.Add(1)
			go func(req request) {
				defer callWG.Done()
				defer func() { <-e.callSem }()
				status, resp, _ := e.execute(e.baseCtx, req, false)
				// Workers hand the flush to the connection's flusher so a
				// burst of completing handlers coalesces into one syscall.
				_ = e.respond(cw, req.id, status, resp, true)
			}(req)
		default:
			if req.pooled {
				putBuf(req.payload)
			}
			if e.respond(cw, req.id, statusAppError,
				[]byte(fmt.Sprintf("unknown op %d", req.op)), false) != nil {
				return
			}
		}
	}
}

// connWriter is the shared, flush-coalescing response writer for one inbound
// connection. The read loop's inline responses are flushed at the loop top
// once the request burst drains; call workers mark the writer dirty and the
// flush goroutine pushes a burst of handler responses out in one syscall.
type connWriter struct {
	mu    sync.Mutex
	w     *bufio.Writer
	dirty chan struct{} // cap 1: worker responses await a flush
	done  chan struct{} // closed by serveConn after workers drain
}

// flushPending pushes out any deferred response frames.
func (cw *connWriter) flushPending() error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.w.Buffered() == 0 {
		return nil
	}
	return cw.w.Flush()
}

// flushLoop drains worker responses. Flush errors are ignored here: the
// connection is torn down by the read loop, which sees the same failure.
func (cw *connWriter) flushLoop() {
	for {
		select {
		case <-cw.dirty:
			waitForBurst(&cw.mu, cw.w)
			_ = cw.flushPending()
		case <-cw.done:
			_ = cw.flushPending() // whatever the last workers left behind
			return
		}
	}
}

// respond frames one response. With deferFlush=false (read-loop fast path)
// the frame stays buffered for the loop-top flush; with deferFlush=true
// (call workers) the connection's flush goroutine batches the burst.
func (e *Endpoint) respond(cw *connWriter, id uint64, status byte, payload []byte, deferFlush bool) error {
	cw.mu.Lock()
	err := writeResponse(cw.w, id, status, payload)
	cw.mu.Unlock()
	if err != nil {
		return err
	}
	e.bytesTx.Add(int64(respHeaderSize + len(payload)))
	if deferFlush {
		select {
		case cw.dirty <- struct{}{}:
		default:
		}
	}
	return nil
}

// execute runs one decoded request against local state. ctx is the request
// context handed to control-plane handlers: the endpoint's base context for
// inbound frames, the caller's context on the loopback path. When pool is
// true the opRead response buffer comes from the frame pool and the returned
// bool tells the caller to recycle it after the frame is written; the
// loopback path passes pool=false because its result is handed to the
// application. No branch holds regMu across socket I/O: the copy under the
// read lock is what lets the caller frame the response after the lock is
// released.
func (e *Endpoint) execute(ctx context.Context, req request, pool bool) (byte, []byte, bool) {
	switch req.op {
	case opWrite:
		e.regMu.RLock()
		buf, ok := e.regions[req.region]
		if !ok {
			e.regMu.RUnlock()
			return statusNoRegion, nil, false
		}
		if req.offset < 0 || req.offset+int64(len(req.payload)) > int64(len(buf)) {
			e.regMu.RUnlock()
			return statusOutOfBounds, nil, false
		}
		copy(buf[req.offset:], req.payload)
		e.regMu.RUnlock()
		return statusOK, nil, false
	case opRead:
		e.regMu.RLock()
		buf, ok := e.regions[req.region]
		if !ok {
			e.regMu.RUnlock()
			return statusNoRegion, nil, false
		}
		if req.offset < 0 || req.n < 0 || req.offset+int64(req.n) > int64(len(buf)) {
			e.regMu.RUnlock()
			return statusOutOfBounds, nil, false
		}
		var out []byte
		if pool {
			out = getBuf(req.n)
		} else {
			out = make([]byte, req.n)
		}
		copy(out, buf[req.offset:])
		e.regMu.RUnlock()
		return statusOK, out, pool
	case opCall:
		e.regMu.RLock()
		h := e.handler
		e.regMu.RUnlock()
		if h == nil {
			return statusNoHandler, nil, false
		}
		resp, err := h(ctx, req.from, req.payload)
		if err != nil {
			return statusAppError, []byte(err.Error()), false
		}
		return statusOK, resp, false
	default:
		return statusAppError, []byte(fmt.Sprintf("unknown op %d", req.op)), false
	}
}

// conn returns a pooled connection to peer id on the next round-robin lane,
// dialling on first use.
func (e *Endpoint) conn(ctx context.Context, to transport.NodeID) (laneKey, *clientConn, error) {
	key := laneKey{to: to, lane: int(e.rr.Add(1) % uint64(e.lanes))}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return key, nil, transport.ErrClosed
	}
	if cc, ok := e.conns[key]; ok {
		e.mu.Unlock()
		return key, cc, nil
	}
	addr, ok := e.peers[to]
	e.mu.Unlock()
	if !ok {
		return key, nil, fmt.Errorf("%w: node %d has no known address", transport.ErrUnreachable, to)
	}
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		if ctx.Err() != nil {
			return key, nil, ctx.Err()
		}
		return key, nil, fmt.Errorf("%w: dial %s: %v", transport.ErrUnreachable, addr, err)
	}
	cw := &countingConn{Conn: c}
	cc := &clientConn{
		c:       c,
		cw:      cw,
		w:       bufio.NewWriterSize(cw, 64<<10),
		dirty:   make(chan struct{}, 1),
		done:    make(chan struct{}),
		pending: map[uint64]chan rpcResult{},
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		_ = c.Close()
		return key, nil, transport.ErrClosed
	}
	if existing, ok := e.conns[key]; ok {
		e.mu.Unlock()
		_ = c.Close()
		return key, existing, nil
	}
	e.conns[key] = cc
	// Add while still holding e.mu: the closed check above means Close has
	// not yet reached wg.Wait, so the Add cannot race it.
	e.wg.Add(2)
	e.mu.Unlock()
	go e.readLoop(key, cc, bufio.NewReaderSize(c, 64<<10))
	go e.flushLoop(key, cc)
	return key, cc, nil
}

// dropConn discards a broken pooled connection.
func (e *Endpoint) dropConn(key laneKey, cc *clientConn) {
	e.mu.Lock()
	if e.conns[key] == cc {
		delete(e.conns, key)
	}
	e.mu.Unlock()
	_ = cc.c.Close()
}

// readLoop is the demultiplexer: the single goroutine that consumes response
// frames from one pooled connection and completes the matching round trips.
func (e *Endpoint) readLoop(key laneKey, cc *clientConn, r *bufio.Reader) {
	defer e.wg.Done()
	for {
		id, status, payload, err := readResponse(r)
		if err != nil {
			e.failConn(key, cc, err)
			return
		}
		e.bytesRx.Add(int64(respHeaderSize + len(payload)))
		cc.pmu.Lock()
		ch, ok := cc.pending[id]
		if ok {
			delete(cc.pending, id)
		}
		cc.pmu.Unlock()
		if ok {
			ch <- rpcResult{status: status, payload: payload}
		}
		// else: the waiter's context fired; discard the late response.
	}
}

// failConn marks a connection dead and fails every pending round trip.
// A round trip is failed as retryable only when the kernel provably never
// accepted its frame's final byte (the recorded stream end offset exceeds
// the counted bytes handed to the socket): the peer can at most have
// received a truncated frame, which it discards without executing, so the
// caller transparently redials and re-sends. Frames fully handed to the
// kernel — whether by the flush goroutine or by a bufio overflow flush —
// may have been delivered and executed, so those requests get the terminal
// error (their fate on the peer is unknown). Writes and reads racing a
// Close of the local endpoint are reported as ErrClosed, not
// ErrUnreachable: the peer did not go away, we did.
func (e *Endpoint) failConn(key laneKey, cc *clientConn, cause error) {
	e.dropConn(key, cc)
	closed := e.isClosed()
	err := error(transport.ErrClosed)
	if !closed {
		err = fmt.Errorf("%w: recv: %v", transport.ErrUnreachable, cause)
	}
	cc.wmu.Lock()
	cc.wdead = true
	refs := cc.unflushed
	cc.unflushed = nil
	accepted := cc.cw.n
	cc.wmu.Unlock()
	cc.pmu.Lock()
	if cc.dead {
		cc.pmu.Unlock()
		return // the read loop or flush loop already failed this connection
	}
	cc.dead = true
	cc.deadErr = err
	pending := cc.pending
	cc.pending = nil
	cc.pmu.Unlock()
	close(cc.done)
	var unsentSet map[uint64]struct{}
	if len(refs) > 0 && !closed {
		unsentSet = make(map[uint64]struct{}, len(refs))
		for _, ref := range refs {
			if ref.end > accepted {
				unsentSet[ref.id] = struct{}{}
			}
		}
	}
	for id, ch := range pending {
		if _, ok := unsentSet[id]; ok {
			ch <- rpcResult{err: fmt.Errorf("%w: send: %v", transport.ErrUnreachable, cause), retry: true}
		} else {
			ch <- rpcResult{err: err}
		}
	}
}

// send writes one request frame; wmu is held only for the write itself, so
// concurrent round trips interleave whole frames rather than waiting for
// each other's responses. The flush syscall is always deferred to the
// connection's flush goroutine, which batches every frame written by the
// current burst of runnable senders — the mechanism that keeps a one-core
// host from paying one write syscall per concurrent RPC. Until a flush
// confirms delivery to the kernel, the frame's stream end offset rides in
// unflushed, which is what lets a failed flush (a stale pooled connection,
// typically) be retried safely: failConn compares each recorded offset
// against the bytes the socket actually accepted. A writeRequest error kills
// the write side immediately — the buffer may hold a truncated frame that
// must never be followed by more bytes.
func (e *Endpoint) send(cc *clientConn, op byte, id uint64, region transport.RegionID, offset int64, n int, payload []byte) error {
	cc.wmu.Lock()
	if cc.wdead {
		cc.wmu.Unlock()
		return errors.New("connection already failed")
	}
	err := writeRequest(cc.w, op, id, e.id, region, offset, n, payload)
	if err == nil {
		// Stream offset of this frame's last byte: everything the kernel has
		// accepted so far plus everything still sitting in the bufio buffer.
		// Holds even when bufio auto-flushed mid-frame or bypassed the buffer
		// for a large payload — cw counted those bytes as they went out.
		cc.unflushed = append(cc.unflushed, frameRef{id: id, end: cc.cw.n + int64(cc.w.Buffered())})
	} else {
		cc.wdead = true
	}
	cc.wmu.Unlock()
	if err != nil {
		return err
	}
	e.bytesTx.Add(int64(reqHeaderSize + len(payload)))
	select {
	case cc.dirty <- struct{}{}:
	default: // a flush is already scheduled
	}
	return nil
}

// flushLoop is one connection's deferred flusher: it wakes after a burst of
// senders has marked the writer dirty and pushes their frames out together.
// A failed flush fails the connection; requests whose frames never left the
// buffer are failed as retryable.
func (e *Endpoint) flushLoop(key laneKey, cc *clientConn) {
	defer e.wg.Done()
	for {
		select {
		case <-cc.dirty:
			waitForBurst(&cc.wmu, cc.w)
			cc.wmu.Lock()
			var err error
			if cc.w.Buffered() > 0 {
				err = cc.w.Flush()
			}
			if err == nil {
				// Buffer empty: every recorded frame end is <= cw.n, i.e.
				// fully handed to the kernel and no longer retryable.
				cc.unflushed = cc.unflushed[:0]
			}
			cc.wmu.Unlock()
			if err != nil {
				// failConn snapshots the still-unflushed IDs and fails those
				// round trips as retryable.
				e.failConn(key, cc, err)
				return
			}
		case <-cc.done:
			return
		}
	}
}

// waitForBurst yields the processor until w stops accumulating frames, so a
// flush goroutine woken by the first sender of a burst does not fire before
// the rest of the runnable senders have buffered theirs. Bounded: at most a
// few yields, and a buffer already past half its capacity flushes at once.
func waitForBurst(mu *sync.Mutex, w *bufio.Writer) {
	prev := -1
	for i := 0; i < 4; i++ {
		mu.Lock()
		cur, avail := w.Buffered(), w.Available()
		mu.Unlock()
		if cur == prev || cur > avail {
			return
		}
		prev = cur
		runtime.Gosched()
	}
}

func (e *Endpoint) roundTrip(ctx context.Context, to transport.NodeID, op byte, region transport.RegionID, offset int64, n int, payload []byte) ([]byte, error) {
	if len(payload) > maxPayload {
		return nil, fmt.Errorf("%w: payload %d exceeds %d", ErrFrameTooLarge, len(payload), maxPayload)
	}
	if n > maxPayload {
		return nil, fmt.Errorf("%w: read of %d exceeds %d", ErrFrameTooLarge, n, maxPayload)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if to == e.id {
		// Loopback: execute locally without touching the network.
		if e.isClosed() {
			return nil, transport.ErrClosed
		}
		status, resp, _ := e.execute(ctx, request{
			op: op, from: e.id, region: region, offset: offset, n: n, payload: payload,
		}, false)
		return e.decodeStatus(to, region, status, resp)
	}
	for attempt := 0; ; attempt++ {
		resp, retry, err := e.attempt(ctx, to, op, region, offset, n, payload)
		if err == nil {
			return resp, nil
		}
		if !retry || attempt+1 >= retryAttempts {
			return nil, err
		}
		// Reconnect with backoff instead of failing the caller.
		e.reconnects.Inc()
		t := time.NewTimer(retryBackoff << attempt)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
}

// attempt runs one round trip. retry reports whether the failure is safe to
// retry: only errors where the request provably never reached the peer
// (dial failures, dead pooled connections, send errors) are retryable;
// once a request is on the wire a lost response is surfaced to the caller,
// never re-executed.
func (e *Endpoint) attempt(ctx context.Context, to transport.NodeID, op byte, region transport.RegionID, offset int64, n int, payload []byte) (_ []byte, retry bool, _ error) {
	key, cc, err := e.conn(ctx, to)
	if err != nil {
		if errors.Is(err, transport.ErrClosed) || ctx.Err() != nil {
			return nil, false, err
		}
		e.mu.Lock()
		_, known := e.peers[to]
		e.mu.Unlock()
		return nil, known, err // unknown peers fail fast, dial errors retry
	}
	id, ch, err := cc.register()
	if err != nil {
		return nil, true, err // connection died while pooled
	}
	if err := e.send(cc, op, id, region, offset, n, payload); err != nil {
		cc.cancel(id, ch)
		e.dropConn(key, cc)
		if e.isClosed() {
			return nil, false, transport.ErrClosed
		}
		return nil, true, fmt.Errorf("%w: send: %v", transport.ErrUnreachable, err)
	}
	e.inflight.Add(1)
	start := time.Now()
	var res rpcResult
	if done := ctx.Done(); done == nil {
		// Background-style context: a plain channel receive skips the
		// two-case select machinery on the hot path.
		res = <-ch
	} else {
		select {
		case res = <-ch:
		case <-done:
			e.inflight.Add(-1)
			cc.cancel(id, ch)
			return nil, false, ctx.Err()
		}
	}
	e.inflight.Add(-1)
	e.rtt.Observe(time.Since(start))
	if res.err != nil {
		return nil, res.retry, res.err
	}
	resultChanPool.Put(ch)
	out, err := e.decodeStatus(to, region, res.status, res.payload)
	return out, false, err
}

// decodeStatus maps a wire status byte back to the transport sentinel errors.
func (e *Endpoint) decodeStatus(to transport.NodeID, region transport.RegionID, status byte, resp []byte) ([]byte, error) {
	switch status {
	case statusOK:
		return resp, nil
	case statusNoRegion:
		return nil, fmt.Errorf("%w: region %d on node %d", transport.ErrNoRegion, region, to)
	case statusOutOfBounds:
		return nil, fmt.Errorf("%w: region %d on node %d", transport.ErrOutOfBounds, region, to)
	case statusNoHandler:
		return nil, fmt.Errorf("%w: node %d", transport.ErrNoHandler, to)
	case statusAppError:
		return nil, fmt.Errorf("tcpnet: remote error: %s", resp)
	default:
		return nil, fmt.Errorf("tcpnet: unknown status %d", status)
	}
}

// WriteRegion implements transport.Verbs.
func (e *Endpoint) WriteRegion(ctx context.Context, to transport.NodeID, region transport.RegionID, offset int64, data []byte) error {
	_, err := e.roundTrip(ctx, to, opWrite, region, offset, 0, data)
	return err
}

// ReadRegion implements transport.Verbs.
func (e *Endpoint) ReadRegion(ctx context.Context, to transport.NodeID, region transport.RegionID, offset int64, n int) ([]byte, error) {
	return e.roundTrip(ctx, to, opRead, region, offset, n, nil)
}

// Call implements transport.Verbs.
func (e *Endpoint) Call(ctx context.Context, to transport.NodeID, payload []byte) ([]byte, error) {
	return e.roundTrip(ctx, to, opCall, 0, 0, 0, payload)
}

// request is one decoded request frame. pooled marks a payload drawn from
// the frame pool (one-sided writes only; call payloads are handler-owned).
type request struct {
	op      byte
	id      uint64
	from    transport.NodeID
	region  transport.RegionID
	offset  int64
	n       int
	payload []byte
	pooled  bool
}

// writeRequest frames one request without flushing; the caller decides when
// the flush syscall happens (see Endpoint.send's coalescing).
func writeRequest(w *bufio.Writer, op byte, id uint64, from transport.NodeID, region transport.RegionID, offset int64, n int, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("%w: payload %d exceeds %d", ErrFrameTooLarge, len(payload), maxPayload)
	}
	var hdr [reqHeaderSize]byte
	hdr[0] = op
	binary.BigEndian.PutUint64(hdr[1:9], id)
	binary.BigEndian.PutUint64(hdr[9:17], uint64(from))
	binary.BigEndian.PutUint32(hdr[17:21], uint32(region))
	binary.BigEndian.PutUint64(hdr[21:29], uint64(offset))
	binary.BigEndian.PutUint32(hdr[29:33], uint32(n))
	binary.BigEndian.PutUint32(hdr[33:37], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readRequest(r *bufio.Reader) (request, error) {
	var hdr [reqHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return request{}, err
	}
	req := request{
		op:     hdr[0],
		id:     binary.BigEndian.Uint64(hdr[1:9]),
		from:   transport.NodeID(binary.BigEndian.Uint64(hdr[9:17])),
		region: transport.RegionID(binary.BigEndian.Uint32(hdr[17:21])),
		offset: int64(binary.BigEndian.Uint64(hdr[21:29])),
		n:      int(int32(binary.BigEndian.Uint32(hdr[29:33]))),
	}
	payloadLen := binary.BigEndian.Uint32(hdr[33:37])
	if payloadLen > maxPayload {
		return request{}, errors.New("tcpnet: oversized frame")
	}
	if req.op == opCall {
		// Handlers may retain their payload, so it cannot come from the pool.
		req.payload = make([]byte, payloadLen)
	} else {
		req.payload = getBuf(int(payloadLen))
		req.pooled = true
	}
	if _, err := io.ReadFull(r, req.payload); err != nil {
		if req.pooled {
			putBuf(req.payload)
		}
		return request{}, err
	}
	return req, nil
}

func writeResponse(w *bufio.Writer, id uint64, status byte, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("%w: payload %d exceeds %d", ErrFrameTooLarge, len(payload), maxPayload)
	}
	var hdr [respHeaderSize]byte
	binary.BigEndian.PutUint64(hdr[0:8], id)
	hdr[8] = status
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readResponse(r *bufio.Reader) (id uint64, status byte, payload []byte, err error) {
	var hdr [respHeaderSize]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	id = binary.BigEndian.Uint64(hdr[0:8])
	status = hdr[8]
	payloadLen := binary.BigEndian.Uint32(hdr[9:13])
	if payloadLen > maxPayload {
		return 0, 0, nil, errors.New("tcpnet: oversized frame")
	}
	payload = make([]byte, payloadLen)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return id, status, payload, nil
}

// Frame buffer pool: size-classed so a 4 KiB page write doesn't hand back a
// 4 MiB buffer. Classes are powers of two from 4 KiB to 4 MiB; anything
// larger is allocated directly (rare: bulk transfers), anything smaller
// rides in the 4 KiB class.
const (
	minPoolBuf  = 4 << 10
	maxPoolBuf  = 4 << 20
	poolClasses = 11 // 4<<10 << 10 == 4<<20
)

var bufPools [poolClasses]sync.Pool

// classFor returns the smallest class whose buffers hold n bytes.
func classFor(n int) int {
	if n <= minPoolBuf {
		return 0
	}
	c := bits.Len(uint(n-1)) - bits.Len(uint(minPoolBuf)) + 1
	if c >= poolClasses {
		return poolClasses - 1
	}
	return c
}

// getBuf returns a length-n buffer, reusing a pooled one when available.
func getBuf(n int) []byte {
	if n == 0 {
		return []byte{}
	}
	if n > maxPoolBuf {
		return make([]byte, n)
	}
	c := classFor(n)
	if p, ok := bufPools[c].Get().(*[]byte); ok {
		return (*p)[:n]
	}
	return make([]byte, n, minPoolBuf<<c)
}

// putBuf recycles a buffer previously returned by getBuf.
func putBuf(b []byte) {
	c := cap(b)
	if c < minPoolBuf || c > maxPoolBuf {
		return
	}
	cl := bits.Len(uint(c)) - bits.Len(uint(minPoolBuf))
	if c != minPoolBuf<<cl {
		// Not a class-sized buffer (didn't come from the pool); drop it.
		return
	}
	b = b[:0]
	bufPools[cl].Put(&b)
}
