// Package tcpnet implements transport.Endpoint over real TCP sockets, so a
// disaggregated memory cluster can run as ordinary processes on commodity
// networks. It preserves the verbs semantics of the simulated fabric —
// one-sided region writes/reads execute against pre-registered buffers
// without invoking the application handler — while trading RDMA's kernel
// bypass for portability (the paper's §IV.G notes TCP and RDMA share the
// connected, reliable, in-order model).
//
// # Wire format
//
// Every request carries a 64-bit request ID that the peer echoes back in the
// matching response, so many RPCs can be in flight on one connection and
// responses may return in any order (all integers big-endian):
//
//	request:  op(1) reqID(8) from(8) region(4) offset(8) n(4) payloadLen(4) payload
//	response: reqID(8) status(1) payloadLen(4) payload
//
// Payloads above 64 MiB are rejected on the send side with ErrFrameTooLarge
// before a byte hits the wire; a receiver treats an oversized length prefix
// as a protocol violation and drops the connection.
//
// # Concurrency model
//
// Like an RDMA reliable connection with many outstanding verbs, each pooled
// connection is split into a send side (a mutex held only for the duration
// of one frame write) and a single demultiplexing reader goroutine that
// routes responses to per-request channels. Unlimited RPCs to the same peer
// proceed concurrently; none waits for another's round trip. Because a
// single connection's frame-processing loops are themselves serial, each
// peer gets a small stripe of such connections ("lanes", like a pool of RC
// queue pairs; WithConnsPerPeer) and requests round-robin across them, and
// flush syscalls are coalesced: senders only buffer their frame, and a
// per-connection flush goroutine pushes everything the current burst of
// runnable senders wrote out in one syscall (doorbell batching, in RDMA
// terms).
//
// On the serving side, one-sided opWrite/opRead frames are executed inline
// in the connection's read loop — so one-sided operations on a connection
// execute in exactly the order they were sent, mirroring RC QP ordering —
// while two-sided opCall frames are dispatched to worker goroutines bounded
// by a configurable endpoint-wide cap (WithCallConcurrency). With a cap of 1
// control-plane calls are delivered strictly serially in arrival order;
// with a larger cap, calls whose issuer did not wait for a prior completion
// may be handled concurrently, exactly as multiple outstanding SENDs would.
// Registered regions are guarded by an RWMutex so one-sided operations from
// many connections proceed in parallel. As with real RDMA, concurrently
// accessing overlapping bytes of one region is the application's race to
// avoid.
//
// Broken pooled connections are redialled with exponential backoff instead
// of failing the caller, and every verb honors its context: cancellation or
// deadline expiry abandons the wait immediately (the late response, if any,
// is discarded by the demux reader). A retry is only ever attempted when the
// request frame provably never fully reached the socket: the transport
// counts every byte handed to the kernel and records each frame's end offset
// in the outbound stream, so a frame is re-sent only if the connection died
// before all of its bytes were written — operations are never duplicated on
// the peer by the transport itself.
//
// # Zero-copy data plane
//
// Outbound frames are never assembled into a contiguous staging buffer.
// Senders queue an iovec list — a pooled header block plus the caller's
// payload slices, unmodified — and the flush goroutine hands the whole burst
// to the kernel with one vectored write (net.Buffers, i.e. writev on a TCP
// socket). WriteRegionV extends this to gather writes: the slices land
// contiguously on the peer without the client ever concatenating them.
// Inbound, the demux reader is length-aware: a response whose round trip
// registered a destination buffer (ReadRegionInto) is scattered straight
// into it with io.ReadFull, and every other payload comes from the shared
// size-classed pool (internal/bufpool) rather than a per-response make. The
// ownership rules are bufpool's: pooled buffers handed to callers become
// owned; owners that retain them simply strand one pooled buffer.
package tcpnet

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"godm/internal/bufpool"
	"godm/internal/metrics"
	"godm/internal/transport"
)

const (
	opWrite = 1
	opRead  = 2
	opCall  = 3
)

const (
	statusOK          = 0
	statusNoRegion    = 1
	statusOutOfBounds = 2
	statusNoHandler   = 3
	statusAppError    = 4
)

const (
	reqHeaderSize  = 37
	respHeaderSize = 13
)

// maxPayload bounds a single frame (transport.MaxFrameSize, 64 MiB) to keep
// a malformed peer from forcing huge allocations. The bound is shared with
// the simulated fabric so the two cannot drift on the contract.
const maxPayload = transport.MaxFrameSize

// ErrFrameTooLarge is returned before anything is written to the wire when a
// single operation's payload exceeds the 64 MiB frame limit. Callers should
// split such transfers into smaller operations.
var ErrFrameTooLarge = transport.ErrFrameTooLarge

// DefaultCallConcurrency is the endpoint-wide cap on concurrently executing
// control-plane handlers unless overridden with WithCallConcurrency.
const DefaultCallConcurrency = 32

const (
	// retryAttempts bounds how many times an operation is retried when its
	// request could not be sent (dead pooled connection, dial failure).
	retryAttempts = 3
	// retryBackoff is the base delay between attempts; it doubles each time.
	retryBackoff = 20 * time.Millisecond
)

// Option configures an Endpoint at Listen time.
type Option func(*Endpoint)

// WithCallConcurrency caps how many control-plane (Call) handlers may run
// concurrently across all inbound connections. n < 1 is treated as 1; a cap
// of 1 restores strictly serial, in-arrival-order call delivery.
func WithCallConcurrency(n int) Option {
	return func(e *Endpoint) {
		if n < 1 {
			n = 1
		}
		e.callCap = n
	}
}

// DefaultConnsPerPeer caps the default number of striped connections
// ("lanes") kept per peer, like a small pool of RC queue pairs to one remote
// NIC. The actual default is min(DefaultConnsPerPeer, GOMAXPROCS): extra
// lanes only pay off when their frame-processing loops can run in parallel.
const DefaultConnsPerPeer = 8

// WithConnsPerPeer sets how many TCP connections are pooled per peer.
// Requests round-robin across lanes, so the per-connection read/demux loops
// — the serial bottleneck once RPCs are multiplexed — run in parallel.
// n < 1 is treated as 1 (a single shared connection).
func WithConnsPerPeer(n int) Option {
	return func(e *Endpoint) {
		if n < 1 {
			n = 1
		}
		e.lanes = n
	}
}

// WithMetrics mounts the endpoint's instrumentation on reg instead of a
// free-floating per-node registry, so a daemon can hang transport metrics
// under its unified metrics tree.
func WithMetrics(reg *metrics.Registry) Option {
	return func(e *Endpoint) {
		if reg != nil {
			e.reg = reg
		}
	}
}

// Endpoint is one node's TCP attachment.
type Endpoint struct {
	id       transport.NodeID
	listener net.Listener
	callCap  int
	callSem  chan struct{}
	closedCh chan struct{}

	// baseCtx is the server-side request context handed to inbound
	// control-plane handlers; it is cancelled when the endpoint closes.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// regMu guards the server data plane: registered regions and the
	// control-plane handler. One-sided ops take only the read lock, so they
	// no longer serialize on the endpoint's connection-pool mutex.
	regMu   sync.RWMutex
	regions map[transport.RegionID][]byte
	handler transport.Handler

	// mu guards connection-pool and lifecycle state.
	mu      sync.Mutex
	peers   map[transport.NodeID]string
	conns   map[laneKey]*clientConn
	inbound map[net.Conn]struct{}
	closed  bool

	lanes int
	rr    atomic.Uint64

	reg        *metrics.Registry
	inflight   *metrics.Gauge
	rtt        *metrics.Histogram
	bytesTx    *metrics.Counter
	bytesRx    *metrics.Counter
	reconnects *metrics.Counter
	served     *metrics.Counter

	wg sync.WaitGroup
}

var _ transport.Endpoint = (*Endpoint)(nil)

// laneKey names one striped connection to one peer.
type laneKey struct {
	to   transport.NodeID
	lane int
}

// rpcResult is what the demux reader delivers to a waiting round trip.
// retry marks failures where the request provably never fully left this host
// (the connection died before all of its frame's bytes were handed to the
// kernel), so the operation can be re-sent without risking duplicate
// execution on the peer. pooled marks a payload drawn from the frame pool;
// the round trip releases it unless ownership passes to the caller.
type rpcResult struct {
	status  byte
	payload []byte
	err     error
	retry   bool
	pooled  bool
}

// frameRef remembers where one request frame ends in the outbound byte
// stream, so a connection failure can tell frames that were fully handed to
// the kernel (possibly delivered and executed — never retried) from frames
// the socket provably never finished accepting (safe to retry: the peer can
// at most have seen a truncated frame, which it discards without executing).
// bi/bn locate the frame's slices in the vecQueue while it is unflushed, so
// a cancelled round trip can detach caller-owned payload memory from the
// queue before returning.
type frameRef struct {
	id     uint64
	end    int64 // stream offset one past the frame's last byte
	bi, bn int   // the frame's slice range in vecQueue.bufs
}

// burstBytes is the queue size past which a flush fires immediately instead
// of yielding for more of the sender burst (the old bufio buffer size).
const burstBytes = 64 << 10

// vecQueue is the vectored outbound frame queue shared by the client send
// path and the server response path. Frames are queued as iovecs — a pooled
// header block plus the payload slices, unreferenced and uncopied — and
// flush hands the whole queue to the kernel with one net.Buffers vectored
// write. The embedding connection's mutex guards all fields.
type vecQueue struct {
	bufs    net.Buffers            // queued iovecs, in frame order
	wto     net.Buffers            // WriteTo staging (see flush)
	hdrs    []*[reqHeaderSize]byte // header blocks in flight, recycled on flush
	free    []*[reqHeaderSize]byte // header block freelist
	release [][]byte               // pooled payloads released after flush
	queued  int64                  // bytes in bufs
	written int64                  // bytes the kernel has accepted since dial
}

// header returns a recycled (or new) header block and tracks it for reuse
// after the next successful flush. Response headers use a prefix of the
// request-sized block.
func (q *vecQueue) header() *[reqHeaderSize]byte {
	var h *[reqHeaderSize]byte
	if n := len(q.free); n > 0 {
		h = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		h = new([reqHeaderSize]byte)
	}
	q.hdrs = append(q.hdrs, h)
	return h
}

// flush hands every queued iovec to the kernel in one vectored write. On
// success the queue is reset with its backing storage retained, header
// blocks return to the freelist, and pooled payloads are released. On error
// the queue is left as-is (the connection is dead); written still reflects
// the bytes the kernel accepted, which is what the retry classification in
// failConn compares frame end offsets against.
func (q *vecQueue) flush(conn net.Conn) error {
	if len(q.bufs) == 0 {
		return nil
	}
	var n int64
	var err error
	if raceEnabled {
		// The race detector only annotates the write(2) syscall with the
		// ioSync release that pairs with read(2)'s acquire; the writev path
		// has no annotation, so vectored data sent to an endpoint in this
		// same process would be falsely reported as racing with the peer's
		// reads. Degrade to per-iovec writes when the detector is active.
		for _, b := range q.bufs {
			var m int
			m, err = conn.Write(b)
			n += int64(m)
			if err != nil {
				break
			}
		}
	} else {
		// WriteTo consumes its receiver (and nils out sent entries), so hand
		// it a copy of the slice header and keep ours for backing-array reuse.
		// The copy is staged in the queue struct, not a local: a local would
		// escape to the heap on every flush through WriteTo's pointer
		// receiver — the last allocation on the steady-state path.
		q.wto = q.bufs
		n, err = q.wto.WriteTo(conn)
		q.wto = nil
	}
	q.written += n
	if err != nil {
		return err
	}
	q.bufs = q.bufs[:0]
	q.queued = 0
	q.free = append(q.free, q.hdrs...)
	q.hdrs = q.hdrs[:0]
	for _, b := range q.release {
		putBuf(b)
	}
	q.release = q.release[:0]
	return nil
}

// pendingOp is one in-flight round trip awaiting its response. dst, when
// non-nil, is the caller's destination buffer: the demux reader scatters a
// matching OK payload straight into it. pool selects how other payloads are
// read: from the frame pool (one-sided ops; the round trip releases them)
// or freshly allocated (call responses, which the application retains).
type pendingOp struct {
	ch   chan rpcResult
	dst  []byte
	pool bool
}

// clientConn is one pooled outbound connection. The write side is guarded by
// wmu (held only while one frame is queued or the queue is flushed);
// responses are consumed by a single reader goroutine that routes them to
// pending by request ID.
//
// Flushes are coalesced: senders only queue their frame's iovecs and mark
// the writer dirty, and the connection's flush goroutine pushes everything
// the current burst of runnable senders queued out in one vectored write.
// unflushed records the stream end offset of every frame not yet confirmed
// flushed; because vq.written counts the bytes the kernel has actually
// accepted (a failed writev reports its partial progress), a failure marks
// exactly the frames whose end offset lies beyond the accepted-byte count as
// retryable — those provably never reached the peer intact — while frames
// fully handed to the kernel surface the error to their callers.
type clientConn struct {
	c net.Conn

	wmu       sync.Mutex
	vq        vecQueue
	unflushed []frameRef
	wdead     bool          // write side failed; senders must not queue more frames
	dirty     chan struct{} // cap 1: "queued frames await a flush"
	done      chan struct{} // closed exactly once by failConn

	pmu     sync.Mutex
	pending map[uint64]pendingOp
	nextID  uint64
	dead    bool
	deadErr error
}

// resultChanPool recycles the buffered per-request response channels.
var resultChanPool = sync.Pool{New: func() any { return make(chan rpcResult, 1) }}

// register allocates a request ID and its response channel. dst and pool
// configure how the demux reader lands this request's response payload.
func (cc *clientConn) register(dst []byte, pool bool) (uint64, chan rpcResult, error) {
	cc.pmu.Lock()
	defer cc.pmu.Unlock()
	if cc.dead {
		return 0, nil, cc.deadErr
	}
	cc.nextID++
	id := cc.nextID
	ch := resultChanPool.Get().(chan rpcResult)
	cc.pending[id] = pendingOp{ch: ch, dst: dst, pool: pool}
	return id, ch, nil
}

// cancel abandons a pending request (context fired, or send failed). If the
// entry was already claimed — the reader or failConn owns it and will
// deliver exactly one result — a round trip that lent out a destination
// buffer must wait that result out: returning while the reader may still
// scatter into dst would hand the caller a buffer the transport is about to
// scribble on. Claimed entries without a dst are simply abandoned (the late
// result is dropped on the buffered channel and collected).
func (cc *clientConn) cancel(id uint64, ch chan rpcResult, dst []byte) {
	cc.pmu.Lock()
	_, mine := cc.pending[id]
	if mine {
		delete(cc.pending, id)
	}
	cc.pmu.Unlock()
	if mine {
		resultChanPool.Put(ch)
		return
	}
	if dst != nil {
		res := <-ch
		if res.pooled {
			putBuf(res.payload)
		}
		resultChanPool.Put(ch)
	}
}

// detach unbinds a cancelled frame's payload iovecs from caller-owned
// memory: each still-queued payload slice is copied into a pooled buffer
// that the flush releases. The caller regains exclusive ownership of its
// buffers the moment detach returns, while the stream keeps its framing (the
// queued header promised payloadLen bytes, so the bytes themselves must
// still go out). The happy path never pays this copy — only a context
// cancellation that outruns the flush goroutine does.
func (cc *clientConn) detach(id uint64) {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	for _, ref := range cc.unflushed {
		if ref.id != id {
			continue
		}
		for i := ref.bi + 1; i < ref.bi+ref.bn; i++ {
			b := cc.vq.bufs[i]
			cp := getBuf(len(b))
			copy(cp, b)
			cc.vq.bufs[i] = cp
			cc.vq.release = append(cc.vq.release, cp)
		}
		return
	}
}

// Listen creates an endpoint for node id serving on addr (e.g. ":7400").
// Use Addr to discover the bound address when addr has port 0.
func Listen(id transport.NodeID, addr string, opts ...Option) (*Endpoint, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	e := &Endpoint{
		id:       id,
		listener: l,
		callCap:  DefaultCallConcurrency,
		lanes:    min(DefaultConnsPerPeer, runtime.GOMAXPROCS(0)),
		closedCh: make(chan struct{}),
		regions:  map[transport.RegionID][]byte{},
		peers:    map[transport.NodeID]string{},
		conns:    map[laneKey]*clientConn{},
		inbound:  map[net.Conn]struct{}{},
		reg:      metrics.NewRegistry(fmt.Sprintf("tcpnet/node-%d", id)),
	}
	for _, o := range opts {
		o(e)
	}
	e.baseCtx, e.baseCancel = context.WithCancel(context.Background())
	e.callSem = make(chan struct{}, e.callCap)
	e.inflight = e.reg.Gauge("rpc_inflight")
	e.rtt = e.reg.Histogram("rpc_rtt")
	e.bytesTx = e.reg.Counter("bytes_tx")
	e.bytesRx = e.reg.Counter("bytes_rx")
	e.reconnects = e.reg.Counter("reconnect_attempts")
	e.served = e.reg.Counter("requests_served")
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the listener's address.
func (e *Endpoint) Addr() string { return e.listener.Addr().String() }

// ID implements transport.Endpoint.
func (e *Endpoint) ID() transport.NodeID { return e.id }

// Metrics exposes the endpoint's transport instrumentation: the rpc_inflight
// gauge, rpc_rtt latency histogram, bytes_tx/bytes_rx counters, the
// reconnect_attempts counter, and the requests_served counter.
func (e *Endpoint) Metrics() *metrics.Registry { return e.reg }

// AddPeer records the address of node id for outbound operations.
func (e *Endpoint) AddPeer(id transport.NodeID, addr string) {
	e.mu.Lock()
	e.peers[id] = addr
	e.mu.Unlock()
}

// RegisterRegion implements transport.Endpoint.
func (e *Endpoint) RegisterRegion(id transport.RegionID, size int) ([]byte, error) {
	if size <= 0 {
		return nil, fmt.Errorf("tcpnet: region size %d must be positive", size)
	}
	if e.isClosed() {
		return nil, transport.ErrClosed
	}
	e.regMu.Lock()
	defer e.regMu.Unlock()
	if _, ok := e.regions[id]; ok {
		return nil, fmt.Errorf("tcpnet: region %d already registered", id)
	}
	buf := make([]byte, size)
	e.regions[id] = buf
	return buf, nil
}

// DeregisterRegion implements transport.Endpoint.
func (e *Endpoint) DeregisterRegion(id transport.RegionID) error {
	e.regMu.Lock()
	defer e.regMu.Unlock()
	if _, ok := e.regions[id]; !ok {
		return fmt.Errorf("%w: region %d", transport.ErrNoRegion, id)
	}
	delete(e.regions, id)
	return nil
}

// SetHandler implements transport.Endpoint.
func (e *Endpoint) SetHandler(h transport.Handler) {
	e.regMu.Lock()
	e.handler = h
	e.regMu.Unlock()
}

func (e *Endpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// Close implements transport.Endpoint.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.conns = map[laneKey]*clientConn{}
	inbound := make([]net.Conn, 0, len(e.inbound))
	for c := range e.inbound {
		inbound = append(inbound, c)
	}
	e.mu.Unlock()
	close(e.closedCh)
	e.baseCancel()
	err := e.listener.Close()
	for _, cc := range conns {
		_ = cc.c.Close()
	}
	for _, c := range inbound {
		_ = c.Close()
	}
	e.wg.Wait()
	return err
}

func (e *Endpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.serveConn(conn)
		}()
	}
}

func (e *Endpoint) serveConn(conn net.Conn) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		_ = conn.Close()
		return
	}
	e.inbound[conn] = struct{}{}
	e.mu.Unlock()
	// Response frames are queued by the read loop (one-sided fast path) and
	// by call workers; cw serializes them and coalesces flushes into one
	// vectored write. callWG is drained before the connection is torn down so
	// workers never queue onto a freed writer.
	cw := &connWriter{
		conn:  conn,
		dirty: make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		cw.flushLoop()
	}()
	var callWG sync.WaitGroup
	defer func() {
		callWG.Wait()
		close(cw.done)
		e.mu.Lock()
		delete(e.inbound, conn)
		e.mu.Unlock()
		_ = conn.Close()
	}()
	r := bufio.NewReaderSize(conn, 64<<10)
	for {
		// Flush deferred responses before the read can block: as long as
		// more pipelined requests are already buffered, responses keep
		// accumulating and go out in one syscall.
		if r.Buffered() == 0 {
			if err := cw.flushPending(); err != nil {
				return
			}
		}
		req, err := readRequest(r)
		if err != nil {
			return // peer hung up or sent garbage
		}
		e.bytesRx.Add(int64(reqHeaderSize + len(req.payload)))
		e.served.Inc()
		switch req.op {
		case opRead, opWrite:
			// One-sided fast path: executed inline, in arrival order, and not
			// flushed — the loop top flushes once the request burst drains.
			// opRead copies the region bytes into a pooled buffer so the
			// regions read lock is released before the response is framed: a
			// slow peer stalling the socket write must not pin the lock and
			// wedge registration or one-sided traffic endpoint-wide. The
			// pooled response rides the queue as an iovec and is released by
			// the flush that confirms the kernel took it.
			var status byte
			var resp []byte
			var pooled bool
			if req.op == opRead && req.n > maxPayload {
				status = statusAppError
				resp = []byte(fmt.Sprintf("read of %d bytes exceeds %d-byte frame limit", req.n, maxPayload))
			} else {
				status, resp, pooled = e.execute(e.baseCtx, req, true)
			}
			werr := e.respond(cw, req.id, status, resp, pooled, false)
			if req.pooled {
				putBuf(req.payload)
			}
			if werr != nil {
				return
			}
		case opCall:
			// Two-sided calls go to bounded workers so a slow handler never
			// stalls one-sided traffic behind it. Acquiring the semaphore
			// here (not in the worker) applies backpressure: a saturated
			// server stops reading new frames from this connection.
			select {
			case e.callSem <- struct{}{}:
			case <-e.closedCh:
				return
			}
			callWG.Add(1)
			go func(req request) {
				defer callWG.Done()
				defer func() { <-e.callSem }()
				status, resp, _ := e.execute(e.baseCtx, req, false)
				// Workers hand the flush to the connection's flusher so a
				// burst of completing handlers coalesces into one syscall.
				_ = e.respond(cw, req.id, status, resp, false, true)
			}(req)
		default:
			if req.pooled {
				putBuf(req.payload)
			}
			if e.respond(cw, req.id, statusAppError,
				[]byte(fmt.Sprintf("unknown op %d", req.op)), false, false) != nil {
				return
			}
		}
	}
}

// connWriter is the shared, flush-coalescing response writer for one inbound
// connection. Responses are queued as iovecs (header block plus payload,
// uncopied); the read loop's inline responses are flushed at the loop top
// once the request burst drains, while call workers mark the writer dirty
// and the flush goroutine pushes a burst of handler responses out in one
// vectored write.
type connWriter struct {
	mu    sync.Mutex
	conn  net.Conn
	q     vecQueue
	dead  bool
	dirty chan struct{} // cap 1: worker responses await a flush
	done  chan struct{} // closed by serveConn after workers drain
}

// flushPending pushes out any deferred response frames.
func (cw *connWriter) flushPending() error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.dead {
		return errors.New("tcpnet: connection writer failed")
	}
	err := cw.q.flush(cw.conn)
	if err != nil {
		cw.dead = true
	}
	return err
}

// flushLoop drains worker responses. Flush errors are ignored here: the
// connection is torn down by the read loop, which sees the same failure.
func (cw *connWriter) flushLoop() {
	for {
		select {
		case <-cw.dirty:
			waitForBurst(&cw.mu, &cw.q)
			_ = cw.flushPending()
		case <-cw.done:
			_ = cw.flushPending() // whatever the last workers left behind
			return
		}
	}
}

// respond queues one response frame as iovecs. A pooled payload stays queued
// until the flush that hands it to the kernel releases it. With
// deferFlush=false (read-loop fast path) the frame waits for the loop-top
// flush; with deferFlush=true (call workers) the connection's flush
// goroutine batches the burst.
func (e *Endpoint) respond(cw *connWriter, id uint64, status byte, payload []byte, pooled, deferFlush bool) error {
	if len(payload) > maxPayload {
		if pooled {
			putBuf(payload)
		}
		return fmt.Errorf("%w: payload %d exceeds %d", ErrFrameTooLarge, len(payload), maxPayload)
	}
	cw.mu.Lock()
	if cw.dead {
		cw.mu.Unlock()
		if pooled {
			putBuf(payload)
		}
		return errors.New("tcpnet: connection writer failed")
	}
	hdr := cw.q.header()
	binary.BigEndian.PutUint64(hdr[0:8], id)
	hdr[8] = status
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	cw.q.bufs = append(cw.q.bufs, hdr[:respHeaderSize])
	if len(payload) > 0 {
		cw.q.bufs = append(cw.q.bufs, payload)
		if pooled {
			cw.q.release = append(cw.q.release, payload)
		}
	}
	cw.q.queued += int64(respHeaderSize + len(payload))
	cw.mu.Unlock()
	e.bytesTx.Add(int64(respHeaderSize + len(payload)))
	if deferFlush {
		select {
		case cw.dirty <- struct{}{}:
		default:
		}
	}
	return nil
}

// execute runs one decoded request against local state. ctx is the request
// context handed to control-plane handlers: the endpoint's base context for
// inbound frames, the caller's context on the loopback path. When pool is
// true the opRead response buffer comes from the frame pool and the returned
// bool tells the caller to recycle it after the frame is written; the
// loopback path passes pool=false because its result is handed to the
// application. No branch holds regMu across socket I/O: the copy under the
// read lock is what lets the caller frame the response after the lock is
// released.
func (e *Endpoint) execute(ctx context.Context, req request, pool bool) (byte, []byte, bool) {
	switch req.op {
	case opWrite:
		e.regMu.RLock()
		buf, ok := e.regions[req.region]
		if !ok {
			e.regMu.RUnlock()
			return statusNoRegion, nil, false
		}
		if req.offset < 0 || req.offset+int64(len(req.payload)) > int64(len(buf)) {
			e.regMu.RUnlock()
			return statusOutOfBounds, nil, false
		}
		copy(buf[req.offset:], req.payload)
		e.regMu.RUnlock()
		return statusOK, nil, false
	case opRead:
		e.regMu.RLock()
		buf, ok := e.regions[req.region]
		if !ok {
			e.regMu.RUnlock()
			return statusNoRegion, nil, false
		}
		if req.offset < 0 || req.n < 0 || req.offset+int64(req.n) > int64(len(buf)) {
			e.regMu.RUnlock()
			return statusOutOfBounds, nil, false
		}
		var out []byte
		if pool {
			out = getBuf(req.n)
		} else {
			out = make([]byte, req.n)
		}
		copy(out, buf[req.offset:])
		e.regMu.RUnlock()
		return statusOK, out, pool
	case opCall:
		e.regMu.RLock()
		h := e.handler
		e.regMu.RUnlock()
		if h == nil {
			return statusNoHandler, nil, false
		}
		resp, err := h(ctx, req.from, req.payload)
		if err != nil {
			return statusAppError, []byte(err.Error()), false
		}
		return statusOK, resp, false
	default:
		return statusAppError, []byte(fmt.Sprintf("unknown op %d", req.op)), false
	}
}

// conn returns a pooled connection to peer id on the next round-robin lane,
// dialling on first use.
func (e *Endpoint) conn(ctx context.Context, to transport.NodeID) (laneKey, *clientConn, error) {
	key := laneKey{to: to, lane: int(e.rr.Add(1) % uint64(e.lanes))}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return key, nil, transport.ErrClosed
	}
	if cc, ok := e.conns[key]; ok {
		e.mu.Unlock()
		return key, cc, nil
	}
	addr, ok := e.peers[to]
	e.mu.Unlock()
	if !ok {
		return key, nil, fmt.Errorf("%w: node %d has no known address", transport.ErrUnreachable, to)
	}
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		if ctx.Err() != nil {
			return key, nil, ctx.Err()
		}
		return key, nil, fmt.Errorf("%w: dial %s: %v", transport.ErrUnreachable, addr, err)
	}
	cc := &clientConn{
		c:       c,
		dirty:   make(chan struct{}, 1),
		done:    make(chan struct{}),
		pending: map[uint64]pendingOp{},
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		_ = c.Close()
		return key, nil, transport.ErrClosed
	}
	if existing, ok := e.conns[key]; ok {
		e.mu.Unlock()
		_ = c.Close()
		return key, existing, nil
	}
	e.conns[key] = cc
	// Add while still holding e.mu: the closed check above means Close has
	// not yet reached wg.Wait, so the Add cannot race it.
	e.wg.Add(2)
	e.mu.Unlock()
	go e.readLoop(key, cc, bufio.NewReaderSize(c, 64<<10))
	go e.flushLoop(key, cc)
	return key, cc, nil
}

// dropConn discards a broken pooled connection.
func (e *Endpoint) dropConn(key laneKey, cc *clientConn) {
	e.mu.Lock()
	if e.conns[key] == cc {
		delete(e.conns, key)
	}
	e.mu.Unlock()
	_ = cc.c.Close()
}

// readLoop is the demultiplexer: the single goroutine that consumes response
// frames from one pooled connection and completes the matching round trips.
// It is length-aware: the pending entry is claimed before the payload is
// read, so a round trip that registered a destination buffer gets its bytes
// scattered straight off the socket into it, abandoned responses are
// discarded without allocating, and everything else lands in a pooled
// buffer. A claimed entry is always delivered exactly one result — on a read
// error its waiter hears the failure before failConn sweeps the rest — which
// is what lets a cancelled scatter read block until its buffer is safe.
func (e *Endpoint) readLoop(key laneKey, cc *clientConn, r *bufio.Reader) {
	defer e.wg.Done()
	var hdr [respHeaderSize]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			e.failConn(key, cc, err)
			return
		}
		id := binary.BigEndian.Uint64(hdr[0:8])
		status := hdr[8]
		payloadLen := int(binary.BigEndian.Uint32(hdr[9:13]))
		if payloadLen > maxPayload {
			e.failConn(key, cc, errors.New("tcpnet: oversized frame"))
			return
		}
		cc.pmu.Lock()
		op, ok := cc.pending[id]
		if ok {
			delete(cc.pending, id)
		}
		cc.pmu.Unlock()
		if !ok {
			// The waiter's context fired; drain the late response in place.
			if _, err := r.Discard(payloadLen); err != nil {
				e.failConn(key, cc, err)
				return
			}
			e.bytesRx.Add(int64(respHeaderSize + payloadLen))
			continue
		}
		if op.dst != nil && status == statusOK && payloadLen == len(op.dst) {
			if _, err := io.ReadFull(r, op.dst); err != nil {
				op.ch <- rpcResult{err: fmt.Errorf("%w: recv: %v", transport.ErrUnreachable, err)}
				e.failConn(key, cc, err)
				return
			}
			e.bytesRx.Add(int64(respHeaderSize + payloadLen))
			op.ch <- rpcResult{status: status}
			continue
		}
		var payload []byte
		if op.pool {
			payload = getBuf(payloadLen)
		} else {
			payload = make([]byte, payloadLen)
		}
		if _, err := io.ReadFull(r, payload); err != nil {
			if op.pool {
				putBuf(payload)
			}
			op.ch <- rpcResult{err: fmt.Errorf("%w: recv: %v", transport.ErrUnreachable, err)}
			e.failConn(key, cc, err)
			return
		}
		e.bytesRx.Add(int64(respHeaderSize + payloadLen))
		op.ch <- rpcResult{status: status, payload: payload, pooled: op.pool}
	}
}

// failConn marks a connection dead and fails every pending round trip.
// A round trip is failed as retryable only when the kernel provably never
// accepted its frame's final byte (the recorded stream end offset exceeds
// the counted bytes handed to the socket): the peer can at most have
// received a truncated frame, which it discards without executing, so the
// caller transparently redials and re-sends. Frames fully handed to the
// kernel — whether by the flush goroutine or by a bufio overflow flush —
// may have been delivered and executed, so those requests get the terminal
// error (their fate on the peer is unknown). Writes and reads racing a
// Close of the local endpoint are reported as ErrClosed, not
// ErrUnreachable: the peer did not go away, we did.
func (e *Endpoint) failConn(key laneKey, cc *clientConn, cause error) {
	e.dropConn(key, cc)
	closed := e.isClosed()
	err := error(transport.ErrClosed)
	if !closed {
		err = fmt.Errorf("%w: recv: %v", transport.ErrUnreachable, cause)
	}
	cc.wmu.Lock()
	cc.wdead = true
	refs := cc.unflushed
	cc.unflushed = nil
	accepted := cc.vq.written
	cc.wmu.Unlock()
	cc.pmu.Lock()
	if cc.dead {
		cc.pmu.Unlock()
		return // the read loop or flush loop already failed this connection
	}
	cc.dead = true
	cc.deadErr = err
	pending := cc.pending
	cc.pending = nil
	cc.pmu.Unlock()
	close(cc.done)
	var unsentSet map[uint64]struct{}
	if len(refs) > 0 && !closed {
		unsentSet = make(map[uint64]struct{}, len(refs))
		for _, ref := range refs {
			if ref.end > accepted {
				unsentSet[ref.id] = struct{}{}
			}
		}
	}
	for id, op := range pending {
		if _, ok := unsentSet[id]; ok {
			op.ch <- rpcResult{err: fmt.Errorf("%w: send: %v", transport.ErrUnreachable, cause), retry: true}
		} else {
			op.ch <- rpcResult{err: err}
		}
	}
}

// send queues one request frame as iovecs — a pooled header block plus the
// caller's payload slices, uncopied; wmu is held only for the queueing, so
// concurrent round trips interleave whole frames rather than waiting for
// each other's responses. The vectored-write syscall is always deferred to
// the connection's flush goroutine, which batches every frame queued by the
// current burst of runnable senders — the mechanism that keeps a one-core
// host from paying one write syscall per concurrent RPC. Until a flush
// confirms delivery to the kernel, the frame's stream end offset rides in
// unflushed, which is what lets a failed flush (a stale pooled connection,
// typically) be retried safely: failConn compares each recorded offset
// against the bytes the socket actually accepted.
//
// The queued payload slices remain caller-owned: the caller is blocked in
// its round trip until the response (which implies the flush) arrives, and
// the cancellation path detaches the slices from the queue before returning.
func (e *Endpoint) send(cc *clientConn, op byte, id uint64, region transport.RegionID, offset int64, n int, payload []byte, extra [][]byte) error {
	plen := len(payload)
	for _, b := range extra {
		plen += len(b)
	}
	cc.wmu.Lock()
	if cc.wdead {
		cc.wmu.Unlock()
		return errors.New("connection already failed")
	}
	q := &cc.vq
	hdr := q.header()
	hdr[0] = op
	binary.BigEndian.PutUint64(hdr[1:9], id)
	binary.BigEndian.PutUint64(hdr[9:17], uint64(e.id))
	binary.BigEndian.PutUint32(hdr[17:21], uint32(region))
	binary.BigEndian.PutUint64(hdr[21:29], uint64(offset))
	binary.BigEndian.PutUint32(hdr[29:33], uint32(n))
	binary.BigEndian.PutUint32(hdr[33:37], uint32(plen))
	bi := len(q.bufs)
	q.bufs = append(q.bufs, hdr[:])
	if len(payload) > 0 {
		q.bufs = append(q.bufs, payload)
	}
	for _, b := range extra {
		if len(b) > 0 {
			q.bufs = append(q.bufs, b)
		}
	}
	q.queued += int64(reqHeaderSize + plen)
	cc.unflushed = append(cc.unflushed, frameRef{id: id, end: q.written + q.queued, bi: bi, bn: len(q.bufs) - bi})
	cc.wmu.Unlock()
	e.bytesTx.Add(int64(reqHeaderSize + plen))
	select {
	case cc.dirty <- struct{}{}:
	default: // a flush is already scheduled
	}
	return nil
}

// flushLoop is one connection's deferred flusher: it wakes after a burst of
// senders has marked the writer dirty and pushes their frames out together
// in one vectored write. A failed flush fails the connection; requests whose
// frames never reached the kernel are failed as retryable.
func (e *Endpoint) flushLoop(key laneKey, cc *clientConn) {
	defer e.wg.Done()
	for {
		select {
		case <-cc.dirty:
			waitForBurst(&cc.wmu, &cc.vq)
			cc.wmu.Lock()
			err := cc.vq.flush(cc.c)
			if err == nil {
				// Queue empty: every recorded frame end is <= vq.written,
				// i.e. fully handed to the kernel and no longer retryable.
				cc.unflushed = cc.unflushed[:0]
			}
			cc.wmu.Unlock()
			if err != nil {
				// failConn snapshots the still-unflushed IDs and fails those
				// round trips as retryable.
				e.failConn(key, cc, err)
				return
			}
		case <-cc.done:
			return
		}
	}
}

// waitForBurst yields the processor until q stops accumulating frames, so a
// flush goroutine woken by the first sender of a burst does not fire before
// the rest of the runnable senders have queued theirs. Bounded: at most a
// few yields, and a queue already past the burst threshold flushes at once.
func waitForBurst(mu *sync.Mutex, q *vecQueue) {
	prev := int64(-1)
	for i := 0; i < 4; i++ {
		mu.Lock()
		cur := q.queued
		mu.Unlock()
		if cur == prev || cur > burstBytes {
			return
		}
		prev = cur
		runtime.Gosched()
	}
}

// roundTrip runs one request against a peer. payload and extra together form
// the request payload (extra is WriteRegionV's gather list; both may be
// nil); dst, when non-nil, is the caller's destination buffer for an opRead
// response, scattered into directly by the demux reader.
func (e *Endpoint) roundTrip(ctx context.Context, to transport.NodeID, op byte, region transport.RegionID, offset int64, n int, payload []byte, extra [][]byte, dst []byte) ([]byte, error) {
	plen := len(payload)
	for _, b := range extra {
		plen += len(b)
	}
	if plen > maxPayload {
		return nil, fmt.Errorf("%w: payload %d exceeds %d", ErrFrameTooLarge, plen, maxPayload)
	}
	if n > maxPayload {
		return nil, fmt.Errorf("%w: read of %d exceeds %d", ErrFrameTooLarge, n, maxPayload)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if to == e.id {
		// Loopback: execute locally without touching the network.
		if e.isClosed() {
			return nil, transport.ErrClosed
		}
		if op == opWrite && extra != nil {
			return nil, e.writeLocalV(to, region, offset, payload, extra)
		}
		if op == opRead && dst != nil {
			return nil, e.readLocalInto(to, region, offset, dst)
		}
		status, resp, _ := e.execute(ctx, request{
			op: op, from: e.id, region: region, offset: offset, n: n, payload: payload,
		}, false)
		return e.decodeStatus(to, region, status, resp)
	}
	for attempt := 0; ; attempt++ {
		resp, retry, err := e.attempt(ctx, to, op, region, offset, n, payload, extra, dst)
		if err == nil {
			return resp, nil
		}
		if !retry || attempt+1 >= retryAttempts {
			return nil, err
		}
		// Reconnect with backoff instead of failing the caller.
		e.reconnects.Inc()
		t := time.NewTimer(retryBackoff << attempt)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
}

// attempt runs one round trip. retry reports whether the failure is safe to
// retry: only errors where the request provably never reached the peer
// (dial failures, dead pooled connections, send errors) are retryable;
// once a request is on the wire a lost response is surfaced to the caller,
// never re-executed.
func (e *Endpoint) attempt(ctx context.Context, to transport.NodeID, op byte, region transport.RegionID, offset int64, n int, payload []byte, extra [][]byte, dst []byte) (_ []byte, retry bool, _ error) {
	key, cc, err := e.conn(ctx, to)
	if err != nil {
		if errors.Is(err, transport.ErrClosed) || ctx.Err() != nil {
			return nil, false, err
		}
		e.mu.Lock()
		_, known := e.peers[to]
		e.mu.Unlock()
		return nil, known, err // unknown peers fail fast, dial errors retry
	}
	id, ch, err := cc.register(dst, op != opCall)
	if err != nil {
		return nil, true, err // connection died while pooled
	}
	if err := e.send(cc, op, id, region, offset, n, payload, extra); err != nil {
		cc.cancel(id, ch, nil)
		e.dropConn(key, cc)
		if e.isClosed() {
			return nil, false, transport.ErrClosed
		}
		return nil, true, fmt.Errorf("%w: send: %v", transport.ErrUnreachable, err)
	}
	e.inflight.Add(1)
	start := time.Now()
	var res rpcResult
	if done := ctx.Done(); done == nil {
		// Background-style context: a plain channel receive skips the
		// two-case select machinery on the hot path.
		res = <-ch
	} else {
		select {
		case res = <-ch:
		case <-done:
			e.inflight.Add(-1)
			if payload != nil || extra != nil {
				// Reclaim the caller's payload memory from the write queue
				// before handing the buffers back.
				cc.detach(id)
			}
			cc.cancel(id, ch, dst)
			return nil, false, ctx.Err()
		}
	}
	e.inflight.Add(-1)
	e.rtt.Observe(time.Since(start))
	if res.err != nil {
		return nil, res.retry, res.err
	}
	resultChanPool.Put(ch)
	out, err := e.decodeStatus(to, region, res.status, res.payload)
	if err != nil {
		if res.pooled {
			putBuf(res.payload)
		}
		return nil, false, err
	}
	if dst != nil && out != nil {
		// The reader fell back to a buffered read (length mismatch with dst:
		// a peer anomaly); salvage what fits.
		copied := copy(dst, out)
		if res.pooled {
			putBuf(out)
		}
		if copied != len(dst) {
			return nil, false, fmt.Errorf("tcpnet: short read: %d of %d bytes", copied, len(dst))
		}
		return nil, false, nil
	}
	return out, false, err
}

// writeLocalV applies a loopback gather write directly to the region.
func (e *Endpoint) writeLocalV(to transport.NodeID, region transport.RegionID, offset int64, payload []byte, extra [][]byte) error {
	e.regMu.RLock()
	defer e.regMu.RUnlock()
	buf, ok := e.regions[region]
	if !ok {
		return fmt.Errorf("%w: region %d on node %d", transport.ErrNoRegion, region, to)
	}
	total := int64(len(payload))
	for _, b := range extra {
		total += int64(len(b))
	}
	if offset < 0 || offset+total > int64(len(buf)) {
		return fmt.Errorf("%w: region %d on node %d", transport.ErrOutOfBounds, region, to)
	}
	at := offset + int64(copy(buf[offset:], payload))
	for _, b := range extra {
		at += int64(copy(buf[at:], b))
	}
	return nil
}

// readLocalInto applies a loopback scatter read directly from the region.
func (e *Endpoint) readLocalInto(to transport.NodeID, region transport.RegionID, offset int64, dst []byte) error {
	e.regMu.RLock()
	defer e.regMu.RUnlock()
	buf, ok := e.regions[region]
	if !ok {
		return fmt.Errorf("%w: region %d on node %d", transport.ErrNoRegion, region, to)
	}
	if offset < 0 || offset+int64(len(dst)) > int64(len(buf)) {
		return fmt.Errorf("%w: region %d on node %d", transport.ErrOutOfBounds, region, to)
	}
	copy(dst, buf[offset:])
	return nil
}

// decodeStatus maps a wire status byte back to the transport sentinel errors.
func (e *Endpoint) decodeStatus(to transport.NodeID, region transport.RegionID, status byte, resp []byte) ([]byte, error) {
	switch status {
	case statusOK:
		return resp, nil
	case statusNoRegion:
		return nil, fmt.Errorf("%w: region %d on node %d", transport.ErrNoRegion, region, to)
	case statusOutOfBounds:
		return nil, fmt.Errorf("%w: region %d on node %d", transport.ErrOutOfBounds, region, to)
	case statusNoHandler:
		return nil, fmt.Errorf("%w: node %d", transport.ErrNoHandler, to)
	case statusAppError:
		return nil, fmt.Errorf("tcpnet: remote error: %s", resp)
	default:
		return nil, fmt.Errorf("tcpnet: unknown status %d", status)
	}
}

// WriteRegion implements transport.Verbs.
func (e *Endpoint) WriteRegion(ctx context.Context, to transport.NodeID, region transport.RegionID, offset int64, data []byte) error {
	_, err := e.roundTrip(ctx, to, opWrite, region, offset, 0, data, nil, nil)
	return err
}

// WriteRegionV implements transport.VectoredWriter: bufs ride the write
// queue as one frame's iovec list and land contiguously at offset on the
// peer — the concatenation is performed by the kernel's vectored write and
// the peer's sequential apply, never by an intermediate assembly copy here.
func (e *Endpoint) WriteRegionV(ctx context.Context, to transport.NodeID, region transport.RegionID, offset int64, bufs [][]byte) error {
	_, err := e.roundTrip(ctx, to, opWrite, region, offset, 0, nil, bufs, nil)
	return err
}

// ReadRegion implements transport.Verbs. The returned buffer is drawn from
// the shared frame pool; the caller owns it and may release it with
// bufpool.Put when done (retaining it merely strands one pooled buffer).
func (e *Endpoint) ReadRegion(ctx context.Context, to transport.NodeID, region transport.RegionID, offset int64, n int) ([]byte, error) {
	return e.roundTrip(ctx, to, opRead, region, offset, n, nil, nil, nil)
}

// ReadRegionInto implements transport.ScatterReader: the demux reader
// scatters the response payload straight off the socket into dst, so a
// steady-state read allocates nothing. dst is lent to the transport for the
// duration of the call; if ctx fires mid-response the call blocks until the
// reader has finished with dst before returning ctx.Err().
func (e *Endpoint) ReadRegionInto(ctx context.Context, to transport.NodeID, region transport.RegionID, offset int64, dst []byte) error {
	_, err := e.roundTrip(ctx, to, opRead, region, offset, len(dst), nil, nil, dst)
	return err
}

// Call implements transport.Verbs.
func (e *Endpoint) Call(ctx context.Context, to transport.NodeID, payload []byte) ([]byte, error) {
	return e.roundTrip(ctx, to, opCall, 0, 0, 0, payload, nil, nil)
}

// request is one decoded request frame. pooled marks a payload drawn from
// the frame pool (one-sided writes only; call payloads are handler-owned).
type request struct {
	op      byte
	id      uint64
	from    transport.NodeID
	region  transport.RegionID
	offset  int64
	n       int
	payload []byte
	pooled  bool
}

// writeRequest frames one request without flushing; the caller decides when
// the flush syscall happens (see Endpoint.send's coalescing).
func writeRequest(w *bufio.Writer, op byte, id uint64, from transport.NodeID, region transport.RegionID, offset int64, n int, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("%w: payload %d exceeds %d", ErrFrameTooLarge, len(payload), maxPayload)
	}
	var hdr [reqHeaderSize]byte
	hdr[0] = op
	binary.BigEndian.PutUint64(hdr[1:9], id)
	binary.BigEndian.PutUint64(hdr[9:17], uint64(from))
	binary.BigEndian.PutUint32(hdr[17:21], uint32(region))
	binary.BigEndian.PutUint64(hdr[21:29], uint64(offset))
	binary.BigEndian.PutUint32(hdr[29:33], uint32(n))
	binary.BigEndian.PutUint32(hdr[33:37], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readRequest(r *bufio.Reader) (request, error) {
	// Peek+Discard instead of ReadFull into a local array: the array would
	// escape through the io.Reader interface and cost one heap allocation per
	// request frame.
	hdr, err := r.Peek(reqHeaderSize)
	if err != nil {
		return request{}, err
	}
	req := request{
		op:     hdr[0],
		id:     binary.BigEndian.Uint64(hdr[1:9]),
		from:   transport.NodeID(binary.BigEndian.Uint64(hdr[9:17])),
		region: transport.RegionID(binary.BigEndian.Uint32(hdr[17:21])),
		offset: int64(binary.BigEndian.Uint64(hdr[21:29])),
		n:      int(int32(binary.BigEndian.Uint32(hdr[29:33]))),
	}
	payloadLen := binary.BigEndian.Uint32(hdr[33:37])
	if _, err := r.Discard(reqHeaderSize); err != nil {
		return request{}, err
	}
	if payloadLen > maxPayload {
		return request{}, errors.New("tcpnet: oversized frame")
	}
	if req.op == opCall {
		// Handlers may retain their payload, so it cannot come from the pool.
		req.payload = make([]byte, payloadLen)
	} else {
		req.payload = getBuf(int(payloadLen))
		req.pooled = true
	}
	if _, err := io.ReadFull(r, req.payload); err != nil {
		if req.pooled {
			putBuf(req.payload)
		}
		return request{}, err
	}
	return req, nil
}

func writeResponse(w *bufio.Writer, id uint64, status byte, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("%w: payload %d exceeds %d", ErrFrameTooLarge, len(payload), maxPayload)
	}
	var hdr [respHeaderSize]byte
	binary.BigEndian.PutUint64(hdr[0:8], id)
	hdr[8] = status
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readResponse(r *bufio.Reader) (id uint64, status byte, payload []byte, err error) {
	var hdr [respHeaderSize]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	id = binary.BigEndian.Uint64(hdr[0:8])
	status = hdr[8]
	payloadLen := binary.BigEndian.Uint32(hdr[9:13])
	if payloadLen > maxPayload {
		return 0, 0, nil, errors.New("tcpnet: oversized frame")
	}
	payload = make([]byte, payloadLen)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return id, status, payload, nil
}

// The frame buffer pool is the repository-wide size-classed pool in
// internal/bufpool (4 KiB–4 MiB classes), shared with the core client's
// scratch buffers so a response buffer released by one layer serves the
// next. These thin wrappers keep the package's historical spelling.
const (
	minPoolBuf = bufpool.MinBuf
	maxPoolBuf = bufpool.MaxBuf
)

// getBuf returns a length-n buffer, reusing a pooled one when available.
func getBuf(n int) []byte { return bufpool.Get(n) }

// putBuf recycles a buffer previously returned by getBuf.
func putBuf(b []byte) { bufpool.Put(b) }
