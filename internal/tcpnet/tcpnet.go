// Package tcpnet implements transport.Endpoint over real TCP sockets, so a
// disaggregated memory cluster can run as ordinary processes on commodity
// networks. It preserves the verbs semantics of the simulated fabric —
// one-sided region writes/reads execute against pre-registered buffers
// without invoking the application handler, and requests on one connection
// are delivered in order — while trading RDMA's kernel bypass for
// portability (the paper's §IV.G notes TCP and RDMA share the connected,
// reliable, in-order model).
//
// Wire format (all integers big-endian):
//
//	request:  op(1) from(8) region(4) offset(8) n(4) payloadLen(4) payload
//	response: status(1) payloadLen(4) payload
package tcpnet

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"godm/internal/transport"
)

const (
	opWrite = 1
	opRead  = 2
	opCall  = 3
)

const (
	statusOK          = 0
	statusNoRegion    = 1
	statusOutOfBounds = 2
	statusNoHandler   = 3
	statusAppError    = 4
)

// maxPayload bounds a single frame (64 MiB) to keep a malformed peer from
// forcing huge allocations.
const maxPayload = 64 << 20

// Endpoint is one node's TCP attachment.
type Endpoint struct {
	id       transport.NodeID
	listener net.Listener

	mu      sync.Mutex
	regions map[transport.RegionID][]byte
	handler transport.Handler
	peers   map[transport.NodeID]string
	conns   map[transport.NodeID]*clientConn
	inbound map[net.Conn]struct{}
	closed  bool

	wg sync.WaitGroup
}

var _ transport.Endpoint = (*Endpoint)(nil)

type clientConn struct {
	mu sync.Mutex // serializes request/response pairs
	c  net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
}

// Listen creates an endpoint for node id serving on addr (e.g. ":7400").
// Use Addr to discover the bound address when addr has port 0.
func Listen(id transport.NodeID, addr string) (*Endpoint, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	e := &Endpoint{
		id:       id,
		listener: l,
		regions:  map[transport.RegionID][]byte{},
		peers:    map[transport.NodeID]string{},
		conns:    map[transport.NodeID]*clientConn{},
		inbound:  map[net.Conn]struct{}{},
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the listener's address.
func (e *Endpoint) Addr() string { return e.listener.Addr().String() }

// ID implements transport.Endpoint.
func (e *Endpoint) ID() transport.NodeID { return e.id }

// AddPeer records the address of node id for outbound operations.
func (e *Endpoint) AddPeer(id transport.NodeID, addr string) {
	e.mu.Lock()
	e.peers[id] = addr
	e.mu.Unlock()
}

// RegisterRegion implements transport.Endpoint.
func (e *Endpoint) RegisterRegion(id transport.RegionID, size int) ([]byte, error) {
	if size <= 0 {
		return nil, fmt.Errorf("tcpnet: region size %d must be positive", size)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, transport.ErrClosed
	}
	if _, ok := e.regions[id]; ok {
		return nil, fmt.Errorf("tcpnet: region %d already registered", id)
	}
	buf := make([]byte, size)
	e.regions[id] = buf
	return buf, nil
}

// DeregisterRegion implements transport.Endpoint.
func (e *Endpoint) DeregisterRegion(id transport.RegionID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.regions[id]; !ok {
		return fmt.Errorf("%w: region %d", transport.ErrNoRegion, id)
	}
	delete(e.regions, id)
	return nil
}

// SetHandler implements transport.Endpoint.
func (e *Endpoint) SetHandler(h transport.Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
}

// Close implements transport.Endpoint.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.conns = map[transport.NodeID]*clientConn{}
	inbound := make([]net.Conn, 0, len(e.inbound))
	for c := range e.inbound {
		inbound = append(inbound, c)
	}
	e.mu.Unlock()
	err := e.listener.Close()
	for _, cc := range conns {
		_ = cc.c.Close()
	}
	for _, c := range inbound {
		_ = c.Close()
	}
	e.wg.Wait()
	return err
}

func (e *Endpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.serveConn(conn)
		}()
	}
}

func (e *Endpoint) serveConn(conn net.Conn) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		_ = conn.Close()
		return
	}
	e.inbound[conn] = struct{}{}
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.inbound, conn)
		e.mu.Unlock()
		_ = conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		op, from, region, offset, n, payload, err := readRequest(r)
		if err != nil {
			return // peer hung up or sent garbage
		}
		status, resp := e.execute(op, from, region, offset, n, payload)
		if err := writeResponse(w, status, resp); err != nil {
			return
		}
	}
}

func (e *Endpoint) execute(op byte, from transport.NodeID, region transport.RegionID, offset int64, n int, payload []byte) (byte, []byte) {
	switch op {
	case opWrite:
		e.mu.Lock()
		buf, ok := e.regions[region]
		e.mu.Unlock()
		if !ok {
			return statusNoRegion, nil
		}
		if offset < 0 || offset+int64(len(payload)) > int64(len(buf)) {
			return statusOutOfBounds, nil
		}
		copy(buf[offset:], payload)
		return statusOK, nil
	case opRead:
		e.mu.Lock()
		buf, ok := e.regions[region]
		e.mu.Unlock()
		if !ok {
			return statusNoRegion, nil
		}
		if offset < 0 || n < 0 || offset+int64(n) > int64(len(buf)) {
			return statusOutOfBounds, nil
		}
		out := make([]byte, n)
		copy(out, buf[offset:])
		return statusOK, out
	case opCall:
		e.mu.Lock()
		h := e.handler
		e.mu.Unlock()
		if h == nil {
			return statusNoHandler, nil
		}
		resp, err := h(from, payload)
		if err != nil {
			return statusAppError, []byte(err.Error())
		}
		return statusOK, resp
	default:
		return statusAppError, []byte(fmt.Sprintf("unknown op %d", op))
	}
}

// conn returns a pooled connection to peer id, dialling on first use.
func (e *Endpoint) conn(to transport.NodeID) (*clientConn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, transport.ErrClosed
	}
	if cc, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return cc, nil
	}
	addr, ok := e.peers[to]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: node %d has no known address", transport.ErrUnreachable, to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", transport.ErrUnreachable, addr, err)
	}
	cc := &clientConn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		_ = c.Close()
		return nil, transport.ErrClosed
	}
	if existing, ok := e.conns[to]; ok {
		e.mu.Unlock()
		_ = c.Close()
		return existing, nil
	}
	e.conns[to] = cc
	e.mu.Unlock()
	return cc, nil
}

// dropConn discards a broken pooled connection.
func (e *Endpoint) dropConn(to transport.NodeID, cc *clientConn) {
	e.mu.Lock()
	if e.conns[to] == cc {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	_ = cc.c.Close()
}

func (e *Endpoint) roundTrip(to transport.NodeID, op byte, region transport.RegionID, offset int64, n int, payload []byte) ([]byte, error) {
	if to == e.id {
		// Loopback: execute locally without touching the network.
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return nil, transport.ErrClosed
		}
		status, resp := e.execute(op, e.id, region, offset, n, payload)
		return e.decodeStatus(to, region, status, resp)
	}
	cc, err := e.conn(to)
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if err := writeRequest(cc.w, op, e.id, region, offset, n, payload); err != nil {
		e.dropConn(to, cc)
		return nil, fmt.Errorf("%w: send: %v", transport.ErrUnreachable, err)
	}
	status, resp, err := readResponse(cc.r)
	if err != nil {
		e.dropConn(to, cc)
		return nil, fmt.Errorf("%w: recv: %v", transport.ErrUnreachable, err)
	}
	return e.decodeStatus(to, region, status, resp)
}

// decodeStatus maps a wire status byte back to the transport sentinel errors.
func (e *Endpoint) decodeStatus(to transport.NodeID, region transport.RegionID, status byte, resp []byte) ([]byte, error) {
	switch status {
	case statusOK:
		return resp, nil
	case statusNoRegion:
		return nil, fmt.Errorf("%w: region %d on node %d", transport.ErrNoRegion, region, to)
	case statusOutOfBounds:
		return nil, fmt.Errorf("%w: region %d on node %d", transport.ErrOutOfBounds, region, to)
	case statusNoHandler:
		return nil, fmt.Errorf("%w: node %d", transport.ErrNoHandler, to)
	case statusAppError:
		return nil, fmt.Errorf("tcpnet: remote error: %s", resp)
	default:
		return nil, fmt.Errorf("tcpnet: unknown status %d", status)
	}
}

// WriteRegion implements transport.Verbs.
func (e *Endpoint) WriteRegion(_ context.Context, to transport.NodeID, region transport.RegionID, offset int64, data []byte) error {
	_, err := e.roundTrip(to, opWrite, region, offset, 0, data)
	return err
}

// ReadRegion implements transport.Verbs.
func (e *Endpoint) ReadRegion(_ context.Context, to transport.NodeID, region transport.RegionID, offset int64, n int) ([]byte, error) {
	return e.roundTrip(to, opRead, region, offset, n, nil)
}

// Call implements transport.Verbs.
func (e *Endpoint) Call(_ context.Context, to transport.NodeID, payload []byte) ([]byte, error) {
	return e.roundTrip(to, opCall, 0, 0, 0, payload)
}

func writeRequest(w *bufio.Writer, op byte, from transport.NodeID, region transport.RegionID, offset int64, n int, payload []byte) error {
	var hdr [29]byte
	hdr[0] = op
	binary.BigEndian.PutUint64(hdr[1:9], uint64(from))
	binary.BigEndian.PutUint32(hdr[9:13], uint32(region))
	binary.BigEndian.PutUint64(hdr[13:21], uint64(offset))
	binary.BigEndian.PutUint32(hdr[21:25], uint32(n))
	binary.BigEndian.PutUint32(hdr[25:29], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

func readRequest(r *bufio.Reader) (op byte, from transport.NodeID, region transport.RegionID, offset int64, n int, payload []byte, err error) {
	var hdr [29]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, 0, 0, 0, nil, err
	}
	op = hdr[0]
	from = transport.NodeID(binary.BigEndian.Uint64(hdr[1:9]))
	region = transport.RegionID(binary.BigEndian.Uint32(hdr[9:13]))
	offset = int64(binary.BigEndian.Uint64(hdr[13:21]))
	n = int(int32(binary.BigEndian.Uint32(hdr[21:25])))
	payloadLen := binary.BigEndian.Uint32(hdr[25:29])
	if payloadLen > maxPayload {
		return 0, 0, 0, 0, 0, nil, errors.New("tcpnet: oversized frame")
	}
	payload = make([]byte, payloadLen)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, 0, 0, 0, nil, err
	}
	return op, from, region, offset, n, payload, nil
}

func writeResponse(w *bufio.Writer, status byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = status
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

func readResponse(r *bufio.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	payloadLen := binary.BigEndian.Uint32(hdr[1:5])
	if payloadLen > maxPayload {
		return 0, nil, errors.New("tcpnet: oversized frame")
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}
