package tcpnet

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"godm/internal/transport"
)

// TestConcurrentMixedStress hammers one peer with many goroutines issuing a
// mix of Call / WriteRegion / ReadRegion over the shared multiplexed
// connection. Run under -race; each goroutine owns a disjoint slice of the
// region, matching RDMA's rule that overlapping concurrent access is the
// application's problem.
func TestConcurrentMixedStress(t *testing.T) {
	const (
		workers = 32
		slot    = 128
		iters   = 50
	)
	a, b := pairUp(t)
	b.SetHandler(func(_ context.Context, _ transport.NodeID, payload []byte) ([]byte, error) {
		return payload, nil
	})
	if _, err := b.RegisterRegion(1, workers*slot); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			off := int64(w * slot)
			for i := 0; i < iters; i++ {
				want := bytes.Repeat([]byte{byte(w), byte(i)}, slot/2)
				if err := a.WriteRegion(ctx, 2, 1, off, want); err != nil {
					t.Errorf("worker %d write: %v", w, err)
					return
				}
				got, err := a.ReadRegion(ctx, 2, 1, off, slot)
				if err != nil {
					t.Errorf("worker %d read: %v", w, err)
					return
				}
				if !bytes.Equal(got, want) {
					t.Errorf("worker %d iter %d: read mismatch", w, i)
					return
				}
				msg := []byte(fmt.Sprintf("w%d-i%d", w, i))
				resp, err := a.Call(ctx, 2, msg)
				if err != nil {
					t.Errorf("worker %d call: %v", w, err)
					return
				}
				if !bytes.Equal(resp, msg) {
					t.Errorf("worker %d iter %d: call echo mismatch", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := a.Metrics().Gauge("rpc_inflight").Value(); n != 0 {
		t.Fatalf("rpc_inflight = %d after quiescing, want 0", n)
	}
	if a.Metrics().Counter("bytes_tx").Value() == 0 || a.Metrics().Counter("bytes_rx").Value() == 0 {
		t.Fatal("byte counters did not move")
	}
}

// TestContextCancelMidRPC verifies a Call blocked on a slow handler returns
// promptly with context.Canceled, long before the handler finishes.
func TestContextCancelMidRPC(t *testing.T) {
	a, b := pairUp(t)
	release := make(chan struct{})
	var releaseOnce sync.Once
	releaseHandler := func() { releaseOnce.Do(func() { close(release) }) }
	t.Cleanup(releaseHandler) // let serveConn's worker finish before Close
	b.SetHandler(func(context.Context, transport.NodeID, []byte) ([]byte, error) {
		<-release
		return []byte("late"), nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Call(ctx, 2, []byte("ping"))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the handler
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Call did not return after cancel")
	}
	// The connection must still be usable: the late response is discarded by
	// the demux reader, not misdelivered to the next request.
	releaseHandler()
	b.SetHandler(func(_ context.Context, _ transport.NodeID, p []byte) ([]byte, error) { return p, nil })
	resp, err := a.Call(context.Background(), 2, []byte("after"))
	if err != nil {
		t.Fatalf("Call after cancel: %v", err)
	}
	if string(resp) != "after" {
		t.Fatalf("resp = %q, late response misdelivered", resp)
	}
}

// TestContextDeadlineMidRPC verifies deadline expiry surfaces as
// DeadlineExceeded on all three verbs.
func TestContextDeadlineMidRPC(t *testing.T) {
	a, b := pairUp(t)
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	b.SetHandler(func(context.Context, transport.NodeID, []byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := a.Call(ctx, 2, []byte("x"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Call took %v to honor a 50ms deadline", elapsed)
	}
	// Pre-expired context: rejected before touching the wire.
	expired, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := a.ReadRegion(expired, 2, 1, 0, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("read err = %v, want context.Canceled", err)
	}
	if err := a.WriteRegion(expired, 2, 1, 0, []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("write err = %v, want context.Canceled", err)
	}
}

// TestSequentialOrdering checks the contract's ordering guarantee: when one
// operation completes before the next is issued, the peer observes them in
// that order.
func TestSequentialOrdering(t *testing.T) {
	a, b := pairUp(t)
	var mu sync.Mutex
	var seen []string
	b.SetHandler(func(_ context.Context, _ transport.NodeID, payload []byte) ([]byte, error) {
		mu.Lock()
		seen = append(seen, string(payload))
		mu.Unlock()
		return nil, nil
	})
	if _, err := b.RegisterRegion(1, 8); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := a.Call(ctx, 2, []byte(fmt.Sprintf("%02d", i))); err != nil {
			t.Fatal(err)
		}
		// One-sided writes to the same bytes, issued sequentially: the last
		// one must win.
		if err := a.WriteRegion(ctx, 2, 1, 0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := a.ReadRegion(ctx, 2, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 19 {
		t.Fatalf("final region byte = %d, want 19 (sequential writes reordered)", got[0])
	}
	mu.Lock()
	defer mu.Unlock()
	for i, s := range seen {
		if want := fmt.Sprintf("%02d", i); s != want {
			t.Fatalf("call %d delivered as %q, want %q", i, s, want)
		}
	}
}

// TestCallConcurrencyCapOne verifies WithCallConcurrency(1) restores strictly
// serial handler execution even under concurrent callers.
func TestCallConcurrencyCapOne(t *testing.T) {
	a, err := Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen(2, "127.0.0.1:0", WithCallConcurrency(1))
	if err != nil {
		_ = a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
	a.AddPeer(2, b.Addr())
	var inHandler, maxSeen atomic.Int64
	b.SetHandler(func(context.Context, transport.NodeID, []byte) ([]byte, error) {
		n := inHandler.Add(1)
		defer inHandler.Add(-1)
		if prev := maxSeen.Load(); n > prev {
			maxSeen.Store(n)
		}
		time.Sleep(time.Millisecond)
		return nil, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := a.Call(context.Background(), 2, []byte("x")); err != nil {
				t.Errorf("Call: %v", err)
			}
		}()
	}
	wg.Wait()
	if maxSeen.Load() > 1 {
		t.Fatalf("saw %d concurrent handlers with cap 1", maxSeen.Load())
	}
}

// TestSendSideFrameValidation checks oversized payloads are rejected locally
// with ErrFrameTooLarge before a byte hits the wire, on every path.
func TestSendSideFrameValidation(t *testing.T) {
	a, b := pairUp(t)
	big := make([]byte, maxPayload+1)
	ctx := context.Background()
	if err := a.WriteRegion(ctx, 2, 1, 0, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("WriteRegion err = %v, want ErrFrameTooLarge", err)
	}
	if _, err := a.Call(ctx, 2, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("Call err = %v, want ErrFrameTooLarge", err)
	}
	if _, err := a.ReadRegion(ctx, 2, 1, 0, maxPayload+1); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("ReadRegion err = %v, want ErrFrameTooLarge", err)
	}
	if !errors.Is(ErrFrameTooLarge, transport.ErrFrameTooLarge) {
		t.Fatal("tcpnet.ErrFrameTooLarge must alias the transport sentinel")
	}
	// The peer's connection must not have been poisoned: nothing was sent.
	if _, err := b.RegisterRegion(1, 8); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteRegion(ctx, 2, 1, 0, []byte("ok")); err != nil {
		t.Fatalf("small write after rejected big write: %v", err)
	}
	// writeRequest and writeResponse refuse directly too.
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeRequest(w, opWrite, 1, 1, 1, 0, 0, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("writeRequest err = %v, want ErrFrameTooLarge", err)
	}
	if err := writeResponse(w, 1, statusOK, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("writeResponse err = %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes reached the wire despite validation", buf.Len())
	}
}

// TestCloseDuringInflightRPC pins down the Close/conn race: a round trip in
// flight when the local endpoint closes must surface ErrClosed, not
// ErrUnreachable.
func TestCloseDuringInflightRPC(t *testing.T) {
	a, b := pairUp(t)
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	b.SetHandler(func(context.Context, transport.NodeID, []byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	done := make(chan error, 1)
	go func() {
		_, err := a.Call(context.Background(), 2, []byte("x"))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the request get on the wire
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("in-flight RPC err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight RPC did not fail after Close")
	}
}

// TestReconnectAfterBrokenConn verifies a broken pooled connection is
// redialled transparently instead of failing the caller.
func TestReconnectAfterBrokenConn(t *testing.T) {
	a, b := pairUp(t)
	if _, err := b.RegisterRegion(1, 64); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := a.WriteRegion(ctx, 2, 1, 0, []byte("one")); err != nil {
		t.Fatal(err)
	}
	// Sever every pooled lane to the peer underneath the endpoint.
	a.mu.Lock()
	var severed int
	for key, cc := range a.conns {
		if key.to == 2 {
			_ = cc.c.Close()
			severed++
		}
	}
	a.mu.Unlock()
	if severed == 0 {
		t.Fatal("no pooled connection after first op")
	}
	if err := a.WriteRegion(ctx, 2, 1, 0, []byte("two")); err != nil {
		t.Fatalf("write after broken conn: %v (want transparent reconnect)", err)
	}
	got, err := a.ReadRegion(ctx, 2, 1, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "two" {
		t.Fatalf("got %q after reconnect", got)
	}
}

// TestPipelinedCallsMakeProgressConcurrently proves the transport really
// multiplexes: two calls issued together where the first blocks until the
// second completes can only both finish if they share the connection
// concurrently (under the seed's stop-and-wait transport this deadlocks).
func TestPipelinedCallsMakeProgressConcurrently(t *testing.T) {
	a, b := pairUp(t)
	second := make(chan struct{})
	b.SetHandler(func(_ context.Context, _ transport.NodeID, payload []byte) ([]byte, error) {
		switch string(payload) {
		case "first":
			select {
			case <-second:
			case <-time.After(5 * time.Second):
				return nil, errors.New("second call never arrived: transport is serialized")
			}
		case "second":
			close(second)
		}
		return payload, nil
	})
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, errs[0] = a.Call(ctx, 2, []byte("first")) }()
	time.Sleep(20 * time.Millisecond) // ensure "first" is in flight first
	go func() { defer wg.Done(); _, errs[1] = a.Call(ctx, 2, []byte("second")) }()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

// TestBufferPoolClasses exercises the size-classed frame pool directly.
func TestBufferPoolClasses(t *testing.T) {
	for _, n := range []int{0, 1, 100, minPoolBuf, minPoolBuf + 1, 64 << 10, maxPoolBuf, maxPoolBuf + 1} {
		b := getBuf(n)
		if len(b) != n {
			t.Fatalf("getBuf(%d) returned len %d", n, len(b))
		}
		if n > 0 && n <= maxPoolBuf {
			if c := cap(b); c < minPoolBuf || c&(c-1) != 0 {
				t.Fatalf("getBuf(%d) capacity %d is not a pool class size", n, c)
			}
		}
		putBuf(b)
	}
	// A recycled buffer must come back with the requested length and full
	// class capacity.
	b := getBuf(minPoolBuf)
	putBuf(b)
	b2 := getBuf(10)
	if len(b2) != 10 {
		t.Fatalf("recycled buffer len = %d, want 10", len(b2))
	}
}

// budgetConn is a fake net.Conn whose write side accepts exactly budget
// bytes and then fails, standing in for a kernel that died mid-stream.
type budgetConn struct {
	budget int
	wrote  int
}

func (c *budgetConn) Write(p []byte) (int, error) {
	if c.wrote+len(p) > c.budget {
		n := c.budget - c.wrote
		if n < 0 {
			n = 0
		}
		c.wrote += n
		return n, errors.New("budget exhausted")
	}
	c.wrote += len(p)
	return len(p), nil
}

func (c *budgetConn) Read([]byte) (int, error)         { return 0, errors.New("not readable") }
func (c *budgetConn) Close() error                     { return nil }
func (c *budgetConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (c *budgetConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (c *budgetConn) SetDeadline(time.Time) error      { return nil }
func (c *budgetConn) SetReadDeadline(time.Time) error  { return nil }
func (c *budgetConn) SetWriteDeadline(time.Time) error { return nil }

// TestRetryExcludesPartiallyFlushedFrames pins the at-most-once guarantee
// against a partial vectored write: when the kernel accepts all of frame A
// plus a prefix of frame B before the connection dies, the failure must fail
// A as non-retryable (it may have executed on the peer) while B — whose
// bytes never fully left the host — stays retryable.
func TestRetryExcludesPartiallyFlushedFrames(t *testing.T) {
	e, err := Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Frame A is 45 bytes (37-byte header + 8-byte payload); a 64-byte budget
	// accepts all of A plus 19 bytes of B's header, then dies mid-writev.
	const budget = 64
	sink := &budgetConn{budget: budget}
	cc := &clientConn{
		c:       sink,
		dirty:   make(chan struct{}, 1),
		done:    make(chan struct{}),
		pending: map[uint64]pendingOp{},
	}
	idA, chA, _ := cc.register(nil, true)
	idB, chB, _ := cc.register(nil, true)
	if err := e.send(cc, opWrite, idA, 1, 0, 0, make([]byte, 8), nil); err != nil {
		t.Fatalf("send A: %v", err)
	}
	if err := e.send(cc, opWrite, idB, 1, 0, 0, make([]byte, 10), nil); err != nil {
		t.Fatalf("send B: %v", err)
	}
	cc.wmu.Lock()
	ferr := cc.vq.flush(sink)
	cc.wmu.Unlock()
	if ferr == nil {
		t.Fatal("flush succeeded against an exhausted budget")
	}
	if got := cc.vq.written; got != budget {
		t.Fatalf("kernel accepted %d bytes, want partial flush of %d", got, budget)
	}
	e.failConn(laneKey{to: 2, lane: 0}, cc, errors.New("flush failed"))
	resA, resB := <-chA, <-chB
	if resA.err == nil || resA.retry {
		t.Fatalf("frame A was fully handed to the kernel; must not be retryable (err=%v retry=%v)", resA.err, resA.retry)
	}
	if resB.err == nil || !resB.retry {
		t.Fatalf("frame B never fully reached the kernel; must be retryable (err=%v retry=%v)", resB.err, resB.retry)
	}
}
