//go:build !race

package tcpnet

// raceEnabled reports whether the race detector is compiled in. See race.go
// for why the vectored flush checks it.
const raceEnabled = false
