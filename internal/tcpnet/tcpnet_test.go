package tcpnet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"godm/internal/transport"
)

// pairUp creates two endpoints on loopback that know each other.
func pairUp(t *testing.T) (*Endpoint, *Endpoint) {
	t.Helper()
	a, err := Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen(2, "127.0.0.1:0")
	if err != nil {
		_ = a.Close()
		t.Fatal(err)
	}
	a.AddPeer(2, b.Addr())
	b.AddPeer(1, a.Addr())
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})
	return a, b
}

func TestOneSidedWriteRead(t *testing.T) {
	a, b := pairUp(t)
	buf, err := b.RegisterRegion(7, 8192)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	data := bytes.Repeat([]byte{0xEE}, 4096)
	if err := a.WriteRegion(ctx, 2, 7, 1024, data); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[1024:1024+4096], data) {
		t.Fatal("write did not land in registered buffer")
	}
	got, err := a.ReadRegion(ctx, 2, 7, 1024, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read mismatch")
	}
}

func TestWriteWithoutHandlerIsOneSided(t *testing.T) {
	a, b := pairUp(t)
	if _, err := b.RegisterRegion(1, 64); err != nil {
		t.Fatal(err)
	}
	// No handler installed on b: one-sided ops must still work.
	if err := a.WriteRegion(context.Background(), 2, 1, 0, []byte("hi")); err != nil {
		t.Fatal(err)
	}
}

func TestCallRoundTrip(t *testing.T) {
	a, b := pairUp(t)
	b.SetHandler(func(_ context.Context, from transport.NodeID, payload []byte) ([]byte, error) {
		return []byte(fmt.Sprintf("from=%d:%s", from, payload)), nil
	})
	resp, err := a.Call(context.Background(), 2, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "from=1:ping" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestCallNoHandler(t *testing.T) {
	a, _ := pairUp(t)
	if _, err := a.Call(context.Background(), 2, []byte("x")); !errors.Is(err, transport.ErrNoHandler) {
		t.Fatalf("err = %v, want ErrNoHandler", err)
	}
}

func TestCallHandlerErrorPropagates(t *testing.T) {
	a, b := pairUp(t)
	b.SetHandler(func(context.Context, transport.NodeID, []byte) ([]byte, error) {
		return nil, errors.New("quota exceeded")
	})
	_, err := a.Call(context.Background(), 2, nil)
	if err == nil || !strings.Contains(err.Error(), "quota exceeded") {
		t.Fatalf("err = %v, want remote error text", err)
	}
}

func TestNoRegion(t *testing.T) {
	a, _ := pairUp(t)
	err := a.WriteRegion(context.Background(), 2, 99, 0, []byte("x"))
	if !errors.Is(err, transport.ErrNoRegion) {
		t.Fatalf("err = %v, want ErrNoRegion", err)
	}
}

func TestOutOfBounds(t *testing.T) {
	a, b := pairUp(t)
	if _, err := b.RegisterRegion(1, 10); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := a.WriteRegion(ctx, 2, 1, 8, []byte("xyz")); !errors.Is(err, transport.ErrOutOfBounds) {
		t.Fatalf("err = %v, want ErrOutOfBounds", err)
	}
	if _, err := a.ReadRegion(ctx, 2, 1, 0, 11); !errors.Is(err, transport.ErrOutOfBounds) {
		t.Fatalf("read err = %v, want ErrOutOfBounds", err)
	}
}

func TestUnknownPeer(t *testing.T) {
	a, _ := pairUp(t)
	if err := a.WriteRegion(context.Background(), 42, 1, 0, nil); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestPeerDownUnreachable(t *testing.T) {
	a, b := pairUp(t)
	if _, err := b.RegisterRegion(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	err := a.WriteRegion(context.Background(), 2, 1, 0, []byte("x"))
	if !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestClosedEndpointRejectsOps(t *testing.T) {
	a, _ := pairUp(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteRegion(context.Background(), 2, 1, 0, nil); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, err := a.RegisterRegion(5, 10); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("register err = %v, want ErrClosed", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	a, _ := pairUp(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestDeregisterRegion(t *testing.T) {
	a, b := pairUp(t)
	if _, err := b.RegisterRegion(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := b.DeregisterRegion(1); err != nil {
		t.Fatal(err)
	}
	if err := b.DeregisterRegion(1); !errors.Is(err, transport.ErrNoRegion) {
		t.Fatalf("err = %v, want ErrNoRegion", err)
	}
	if _, err := a.ReadRegion(context.Background(), 2, 1, 0, 1); !errors.Is(err, transport.ErrNoRegion) {
		t.Fatalf("read err = %v, want ErrNoRegion", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	a, _ := pairUp(t)
	if _, err := a.RegisterRegion(1, 0); err == nil {
		t.Fatal("expected error for size 0")
	}
	if _, err := a.RegisterRegion(1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RegisterRegion(1, 10); err == nil {
		t.Fatal("expected error for duplicate region")
	}
}

func TestConcurrentCalls(t *testing.T) {
	a, b := pairUp(t)
	b.SetHandler(func(_ context.Context, _ transport.NodeID, payload []byte) ([]byte, error) {
		return payload, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("msg-%d", i))
			resp, err := a.Call(context.Background(), 2, msg)
			if err != nil {
				t.Errorf("Call: %v", err)
				return
			}
			if !bytes.Equal(resp, msg) {
				t.Errorf("resp = %q, want %q", resp, msg)
			}
		}(i)
	}
	wg.Wait()
}

func TestLargeTransfer(t *testing.T) {
	a, b := pairUp(t)
	const size = 8 << 20
	if _, err := b.RegisterRegion(1, size); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{7}, size)
	ctx := context.Background()
	if err := a.WriteRegion(ctx, 2, 1, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := a.ReadRegion(ctx, 2, 1, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("large transfer mismatch")
	}
}

func TestBidirectional(t *testing.T) {
	a, b := pairUp(t)
	if _, err := a.RegisterRegion(1, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RegisterRegion(1, 16); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := a.WriteRegion(ctx, 2, 1, 0, []byte("a->b")); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteRegion(ctx, 1, 1, 0, []byte("b->a")); err != nil {
		t.Fatal(err)
	}
	got, err := a.ReadRegion(ctx, 1, 1, 0, 4) // self-read via loopback
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "b->a" {
		t.Fatalf("got %q", got)
	}
}

// TestFrameCodecRoundTripProperty checks the wire format against random
// inputs: whatever one endpoint writes, the other reads back bit-for-bit.
func TestFrameCodecRoundTripProperty(t *testing.T) {
	f := func(op byte, id uint64, from int64, region uint32, offset int64, n int32, payload []byte) bool {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := writeRequest(w, op, id, transport.NodeID(from), transport.RegionID(region), offset, int(n), payload); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := readRequest(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		return got.op == op &&
			got.id == id &&
			got.from == transport.NodeID(from) &&
			got.region == transport.RegionID(region) &&
			got.offset == offset &&
			got.n == int(n) &&
			bytes.Equal(got.payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResponseCodecRoundTripProperty(t *testing.T) {
	f := func(id uint64, status byte, payload []byte) bool {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := writeResponse(w, id, status, payload); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		gotID, gotStatus, gotPayload, err := readResponse(bufio.NewReader(&buf))
		return err == nil && gotID == id && gotStatus == status && bytes.Equal(gotPayload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	// Hand-craft a request header claiming a payload beyond maxPayload.
	hdr := make([]byte, reqHeaderSize)
	hdr[0] = opCall
	binary.BigEndian.PutUint32(hdr[33:37], maxPayload+1)
	buf.Write(hdr)
	if _, err := readRequest(bufio.NewReader(&buf)); err == nil {
		t.Fatal("oversized request accepted")
	}
	buf.Reset()
	resp := make([]byte, respHeaderSize)
	binary.BigEndian.PutUint32(resp[9:13], maxPayload+1)
	buf.Write(resp)
	if _, _, _, err := readResponse(bufio.NewReader(&buf)); err == nil {
		t.Fatal("oversized response accepted")
	}
}
