package tcpnet

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"godm/internal/transport"
)

// benchPair creates two endpoints on loopback that know each other, for use
// from both tests and benchmarks.
func benchPair(tb testing.TB) (*Endpoint, *Endpoint) {
	tb.Helper()
	a, err := Listen(1, "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	b, err := Listen(2, "127.0.0.1:0")
	if err != nil {
		_ = a.Close()
		tb.Fatal(err)
	}
	a.AddPeer(2, b.Addr())
	b.AddPeer(1, a.Addr())
	tb.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})
	return a, b
}

const benchPayload = 4096

// BenchmarkTCPNetSerialCall measures stop-and-wait round trips: one goroutine
// issuing control-plane calls back to back.
func BenchmarkTCPNetSerialCall(b *testing.B) {
	a, peer := benchPair(b)
	peer.SetHandler(func(_ context.Context, _ transport.NodeID, payload []byte) ([]byte, error) {
		return payload, nil
	})
	msg := bytes.Repeat([]byte{0xAB}, benchPayload)
	ctx := context.Background()
	b.SetBytes(benchPayload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Call(ctx, 2, msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPNetPipelinedCall measures many goroutines issuing calls to the
// same peer concurrently — the case the multiplexed transport pipelines over
// one connection instead of serializing.
func BenchmarkTCPNetPipelinedCall(b *testing.B) {
	a, peer := benchPair(b)
	peer.SetHandler(func(_ context.Context, _ transport.NodeID, payload []byte) ([]byte, error) {
		return payload, nil
	})
	msg := bytes.Repeat([]byte{0xAB}, benchPayload)
	b.SetBytes(benchPayload)
	b.SetParallelism(8) // 8 concurrent callers regardless of GOMAXPROCS
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		for pb.Next() {
			if _, err := a.Call(ctx, 2, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTCPNetSerialRead measures one goroutine issuing one-sided reads.
func BenchmarkTCPNetSerialRead(b *testing.B) {
	benchRead(b, 1)
}

// BenchmarkTCPNetParallelRead measures 8 concurrent one-sided readers against
// a single peer — the acceptance benchmark for the multiplexed transport.
func BenchmarkTCPNetParallelRead(b *testing.B) {
	benchRead(b, 8)
}

func benchRead(b *testing.B, workers int) {
	a, peer := benchPair(b)
	if _, err := peer.RegisterRegion(1, 1<<20); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	seed := bytes.Repeat([]byte{0x5A}, benchPayload)
	if err := a.WriteRegion(ctx, 2, 1, 0, seed); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(benchPayload)
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / workers
	extra := b.N % workers
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if _, err := a.ReadRegion(ctx, 2, 1, 0, benchPayload); err != nil {
					b.Error(err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
}

// BenchmarkTCPNetParallelWrite measures 8 concurrent one-sided writers to
// disjoint offsets of a single peer region.
func BenchmarkTCPNetParallelWrite(b *testing.B) {
	const workers = 8
	a, peer := benchPair(b)
	if _, err := peer.RegisterRegion(1, workers*benchPayload); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	msg := bytes.Repeat([]byte{0xC3}, benchPayload)
	b.SetBytes(benchPayload)
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / workers
	extra := b.N % workers
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			off := int64(w * benchPayload)
			for i := 0; i < n; i++ {
				if err := a.WriteRegion(ctx, 2, 1, off, msg); err != nil {
					b.Error(err)
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
}
