package tcpnet

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net"
	"sync"
	"testing"
)

// TestVectoredFrameGolden pins the wire format of the vectored write path: a
// WriteRegionV frame captured off a raw TCP listener must be byte-identical
// to the frame the reference codec (writeRequest) assembles from the
// pre-concatenated payload. This is what makes the writev rewrite invisible
// to peers running the sequential framing.
func TestVectoredFrameGolden(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type serverResult struct {
		captured []byte
		req      request
		err      error
	}
	done := make(chan serverResult, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- serverResult{err: err}
			return
		}
		defer conn.Close()
		var captured bytes.Buffer
		br := bufio.NewReader(io.TeeReader(conn, &captured))
		req, err := readRequest(br)
		if err != nil {
			done <- serverResult{err: err}
			return
		}
		bw := bufio.NewWriter(conn)
		if err := writeResponse(bw, req.id, statusOK, nil); err != nil {
			done <- serverResult{err: err}
			return
		}
		if err := bw.Flush(); err != nil {
			done <- serverResult{err: err}
			return
		}
		// Keep the payload: the comparison below reads it. It is pooled, but a
		// test process leaking one pool entry is fine.
		done <- serverResult{captured: append([]byte(nil), captured.Bytes()...), req: req}
	}()

	a, err := Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.AddPeer(2, ln.Addr().String())

	parts := [][]byte{
		bytes.Repeat([]byte{0xA1}, 300),
		{},
		bytes.Repeat([]byte{0xB2}, 4096),
		{0xC3, 0xC4, 0xC5},
	}
	var flat []byte
	for _, p := range parts {
		flat = append(flat, p...)
	}
	if err := a.WriteRegionV(context.Background(), 2, 9, 1234, parts); err != nil {
		t.Fatalf("WriteRegionV: %v", err)
	}
	res := <-done
	if res.err != nil {
		t.Fatalf("server side: %v", res.err)
	}
	if res.req.op != opWrite || res.req.region != 9 || res.req.offset != 1234 {
		t.Fatalf("decoded frame = op %d region %d offset %d", res.req.op, res.req.region, res.req.offset)
	}
	if !bytes.Equal(res.req.payload, flat) {
		t.Fatal("vectored payload did not arrive as the concatenation of the iovec")
	}

	var ref bytes.Buffer
	w := bufio.NewWriter(&ref)
	if err := writeRequest(w, res.req.op, res.req.id, 1, res.req.region, res.req.offset, res.req.n, flat); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.captured, ref.Bytes()) {
		t.Errorf("vectored frame differs from reference codec assembly:\n got %d bytes %x...\nwant %d bytes %x...",
			len(res.captured), res.captured[:min(48, len(res.captured))],
			ref.Len(), ref.Bytes()[:min(48, ref.Len())])
	}
}

// TestReadIntoZeroAlloc pins the tentpole's allocation contract: a
// steady-state one-sided read that scatters into a caller buffer allocates
// nothing on either side of the loopback pair — pooled request headers,
// pooled result channels, pooled server-side response staging, and a
// response payload that lands directly in dst.
func TestReadIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	a, b := pairUp(t)
	if _, err := b.RegisterRegion(1, 1<<20); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	seed := bytes.Repeat([]byte{0x5A}, 4096)
	if err := a.WriteRegion(ctx, 2, 1, 0, seed); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 4096)
	for i := 0; i < 16; i++ { // warm every pool on both endpoints
		if err := a.ReadRegionInto(ctx, 2, 1, 0, dst); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := a.ReadRegionInto(ctx, 2, 1, 0, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("ReadRegionInto allocates %.1f objects/op in steady state, want 0", allocs)
	}
	if !bytes.Equal(dst, seed) {
		t.Fatal("scatter read returned wrong bytes")
	}
}

// BenchmarkTCPNetReadInto is BenchmarkTCPNetParallelRead with the scatter
// verb: 8 readers, each with its own destination buffer, no per-op payload
// allocation.
func BenchmarkTCPNetReadInto(b *testing.B) {
	const workers = 8
	a, peer := benchPair(b)
	if _, err := peer.RegisterRegion(1, 1<<20); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	seed := bytes.Repeat([]byte{0x5A}, benchPayload)
	if err := a.WriteRegion(ctx, 2, 1, 0, seed); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(benchPayload)
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / workers
	extra := b.N % workers
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			dst := make([]byte, benchPayload)
			for i := 0; i < n; i++ {
				if err := a.ReadRegionInto(ctx, 2, 1, 0, dst); err != nil {
					b.Error(err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
}
