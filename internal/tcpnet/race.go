//go:build race

package tcpnet

// raceEnabled reports whether the race detector is compiled in. The
// vectored flush degrades to sequential writes under the detector: the
// happens-before edge the detector models for socket data rides on the
// write/read syscall annotations (syscall's ioSync release/acquire), and the
// raw writev path used by net.Buffers has no such annotation — so data sent
// with writev to a peer in the same process would be reported as racing with
// that peer's later, genuinely ordered reads.
const raceEnabled = true
