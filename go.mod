module godm

go 1.22
