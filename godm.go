// Package godm is a disaggregated-memory toolkit for Go: a complete,
// simulation-backed implementation of the architecture described in
// "Memory Disaggregation: Research Problems and Opportunities" (Liu et al.,
// ICDCS 2019).
//
// The toolkit provides:
//
//   - A per-node disaggregated memory orchestrator (the paper's Figure 1):
//     a node-coordinated shared memory pool fed by virtual-server donations,
//     cluster-wide send/receive buffer pools in RDMA-style registered
//     regions, transparent put/get for data entries with triple-replica
//     fault tolerance, hierarchical sharing groups with leader election,
//     and pluggable memory-balancing policies.
//   - FastSwap, a hybrid swapping system over that substrate (page
//     compression with size-class granularities, window-based batch
//     swap-out, proactive batch swap-in), plus the paper's baselines:
//     Linux disk swap, Zswap, Infiniswap, and NBDX.
//   - DAHI, disaggregated caching of Spark-style RDD partitions, with a
//     miniature lineage-driven execution engine.
//   - Two interchangeable fabrics: a deterministic discrete-event simulated
//     56 Gbps InfiniBand network (used by every experiment) and a real TCP
//     transport for multi-process deployments.
//   - Runners for every table and figure in the paper's evaluation.
//
// # Quick start
//
// Build a simulated cluster, register a virtual server, and let its data
// entries overflow transparently into node-level and then cluster-level
// disaggregated memory:
//
//	c, err := godm.NewSimCluster(godm.SimClusterConfig{Nodes: 4})
//	...
//	vs, err := c.Node(0).AddServer("vm0", 64<<20)
//	...
//	err = c.Run(func(ctx context.Context) error {
//		tier, err := vs.Put(ctx, 1, page, 4096, 4096)
//		...
//	})
package godm

import (
	"context"
	"errors"
	"fmt"
	"time"

	"godm/internal/cluster"
	"godm/internal/compress"
	"godm/internal/core"
	"godm/internal/des"
	"godm/internal/dmcache"
	"godm/internal/exp"
	"godm/internal/kv"
	"godm/internal/memdev"
	"godm/internal/pagetable"
	"godm/internal/placement"
	"godm/internal/rdd"
	"godm/internal/simnet"
	"godm/internal/swap"
	"godm/internal/tcpnet"
	"godm/internal/transport"
	"godm/internal/workload"
)

// Core identifiers and data types, re-exported for the public API.
type (
	// NodeID names a node on the fabric.
	NodeID = transport.NodeID
	// EntryID names a data entry within one virtual server's memory map.
	EntryID = pagetable.EntryID
	// Tier says where a data entry lives.
	Tier = pagetable.Tier
	// Location is a memory-map record.
	Location = pagetable.Location

	// Node is a per-machine disaggregated memory manager.
	Node = core.Node
	// NodeConfig shapes a Node.
	NodeConfig = core.Config
	// VirtualServer is one VM/container/executor's view of disaggregated
	// memory (the LDMC of the paper's Figure 1).
	VirtualServer = core.VirtualServer
	// Client parks entries in a peer's receive pool directly.
	Client = core.Client
	// Entry is one key/payload pair for the batched data plane
	// (Client.PutAll / Window).
	Entry = core.Entry
	// ClientWindow is the §IV.H staging window: entries accumulate and
	// flush to a peer as one batched PutAll.
	ClientWindow = core.Window
	// ClientOption tunes a Client (e.g. WithClientCompression).
	ClientOption = core.ClientOption
	// PolicyEngine applies the §IV.F eviction/ballooning/regrouping
	// policies to a node.
	PolicyEngine = core.PolicyEngine
	// PolicyEngineConfig tunes the policy thresholds.
	PolicyEngineConfig = core.PolicyConfig
	// PolicyActions reports what one policy pass did.
	PolicyActions = core.PolicyActions

	// SwapConfig selects a swapping system.
	SwapConfig = swap.Config
	// SwapManager is a virtual server's page-fault engine.
	SwapManager = swap.Manager
	// SwapDeps wires a SwapManager to its devices.
	SwapDeps = swap.Deps
	// SwapStats counts swapping activity.
	SwapStats = swap.Stats

	// KVServer is a key-value server paged by a SwapManager.
	KVServer = kv.Server

	// RemoteCache is a two-tier key-value cache over peers' idle memory
	// (the paper's §III key-value caching killer app).
	RemoteCache = dmcache.Cache
	// RemoteCacheConfig shapes a RemoteCache.
	RemoteCacheConfig = dmcache.Config
	// RemoteCacheStats counts cache activity.
	RemoteCacheStats = dmcache.Stats

	// RDDEngine builds Spark-style datasets.
	RDDEngine = rdd.Engine
	// RDDExecutor runs partitions with bounded memory.
	RDDExecutor = rdd.Executor
	// RDDExecutorConfig shapes an executor.
	RDDExecutorConfig = rdd.ExecutorConfig
	// Dataset is a lazily evaluated RDD.
	Dataset = rdd.Dataset

	// WorkloadProfile describes a Table-1 application.
	WorkloadProfile = workload.Profile

	// Scale sets experiment sizes.
	Scale = exp.Scale
	// Experiment reproduces one table or figure.
	Experiment = exp.Experiment

	// Balancer selects remote nodes for placement.
	Balancer = placement.Balancer

	// Granularity is a compression size-class list.
	Granularity = compress.Granularity
)

// Tier values.
const (
	TierSharedMemory = pagetable.TierSharedMemory
	TierSendBuffer   = pagetable.TierSendBuffer
	TierRemote       = pagetable.TierRemote
	TierDisk         = pagetable.TierDisk
)

// Re-exported constructors and catalogs.
var (
	// FastSwapConfig builds the full FastSwap system (resident pages,
	// node:cluster distribution ratio 0-10, proactive batch swap-in).
	FastSwapConfig = swap.FastSwap
	// LinuxConfig, ZswapConfig, InfiniswapConfig, and NBDXConfig build the
	// paper's baselines.
	LinuxConfig      = swap.Linux
	ZswapConfig      = swap.Zswap
	InfiniswapConfig = swap.Infiniswap
	NBDXConfig       = swap.NBDX
	// XMemPodConfig adds the [36] flash tier between remote memory and disk.
	XMemPodConfig = swap.XMemPod

	// NewPolicyEngine binds the §IV.F policy engine to a node.
	NewPolicyEngine = core.NewPolicyEngine
	// DefaultPolicyEngineConfig returns testbed-calibrated thresholds.
	DefaultPolicyEngineConfig = core.DefaultPolicyConfig

	// Workloads returns the Table-1 application catalog.
	Workloads = workload.Catalog
	// WorkloadByName fetches one application profile.
	WorkloadByName = workload.ByName

	// Experiments lists every table/figure runner.
	Experiments = exp.Registry
	// ExperimentByID fetches one runner.
	ExperimentByID = exp.ByID
	// DefaultScale is the CI-friendly experiment size.
	DefaultScale = exp.DefaultScale

	// NewRemoteCache builds a two-tier cache over disaggregated memory.
	NewRemoteCache = dmcache.New

	// NewClient wraps a transport attachment in a receive-pool client;
	// DialClient is the TCP convenience wrapper (it accepts no client
	// options — construct via NewClient to pass any).
	NewClient = core.NewClient
	// WithClientCompression deflates entries >= minSize into smaller §IV.H
	// size classes before they cross the fabric (0 = default threshold).
	WithClientCompression = core.WithCompression

	// Balancer constructors (§IV.E policies).
	NewRandomBalancer     = placement.NewRandom
	NewRoundRobinBalancer = placement.NewRoundRobin
	NewWeightedBalancer   = placement.NewWeightedRoundRobin
	NewPowerOfTwoBalancer = placement.NewPowerOfTwo
)

// SimClusterConfig shapes an in-process simulated cluster.
type SimClusterConfig struct {
	// Nodes is the cluster size (default 4).
	Nodes int
	// SharedPoolBytes is each node's shared memory pool (default 64 MiB).
	SharedPoolBytes int64
	// RecvPoolBytes is each node's donated receive pool (default 64 MiB,
	// must be a 1 MiB multiple).
	RecvPoolBytes int64
	// ReplicationFactor for remote entries (default 3, the paper's
	// triple-replica modularity).
	ReplicationFactor int
	// GroupSize partitions nodes into sharing groups (default: all one
	// group).
	GroupSize int
	// PoolShards is the number of lock shards per memory pool (0 selects
	// the library default; 1 reproduces the single-lock pool).
	PoolShards int
}

// SimCluster is an in-process cluster on the simulated RDMA fabric. All
// operations run in simulated time through Run.
type SimCluster struct {
	env    *des.Env
	fabric *simnet.Fabric
	dir    *cluster.Directory
	nodes  []*core.Node
	params memdev.Params
	dram   *memdev.DRAM
	shm    *memdev.SharedMem
}

// NewSimCluster builds a simulated cluster.
func NewSimCluster(cfg SimClusterConfig) (*SimCluster, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	if cfg.Nodes < 1 {
		return nil, errors.New("godm: cluster needs at least one node")
	}
	if cfg.SharedPoolBytes == 0 {
		cfg.SharedPoolBytes = 64 << 20
	}
	if cfg.RecvPoolBytes == 0 {
		cfg.RecvPoolBytes = 64 << 20
	}
	if cfg.ReplicationFactor == 0 {
		cfg.ReplicationFactor = 3
	}
	if cfg.GroupSize == 0 {
		cfg.GroupSize = cfg.Nodes
	}
	env := des.NewEnv()
	fabric := simnet.New(env, simnet.DefaultParams())
	dir, err := cluster.NewDirectory(cluster.Config{GroupSize: cfg.GroupSize, HeartbeatTimeout: 3})
	if err != nil {
		return nil, err
	}
	params := memdev.DefaultParams()
	sc := &SimCluster{
		env:    env,
		fabric: fabric,
		dir:    dir,
		params: params,
		dram:   memdev.NewDRAM(params),
		shm:    memdev.NewSharedMem(params),
	}
	for i := 1; i <= cfg.Nodes; i++ {
		ep, err := fabric.Attach(transport.NodeID(i))
		if err != nil {
			return nil, err
		}
		node, err := core.NewNode(core.Config{
			ID:                transport.NodeID(i),
			SharedPoolBytes:   cfg.SharedPoolBytes,
			SendPoolBytes:     16 << 20,
			RecvPoolBytes:     cfg.RecvPoolBytes,
			SlabSize:          1 << 20,
			ReplicationFactor: cfg.ReplicationFactor,
			PoolShards:        cfg.PoolShards,
		}, ep, dir)
		if err != nil {
			return nil, err
		}
		sc.nodes = append(sc.nodes, node)
	}
	return sc, nil
}

// NodeCount returns the cluster size.
func (c *SimCluster) NodeCount() int { return len(c.nodes) }

// Node returns node i (0-based).
func (c *SimCluster) Node(i int) *Node { return c.nodes[i] }

// Partition cuts connectivity between two nodes (0-based indices), for
// fault-injection scenarios.
func (c *SimCluster) Partition(i, j int) {
	c.fabric.Partition(c.nodes[i].ID(), c.nodes[j].ID())
}

// Heal restores connectivity between two nodes.
func (c *SimCluster) Heal(i, j int) {
	c.fabric.Heal(c.nodes[i].ID(), c.nodes[j].ID())
}

// Run executes body in simulated time and drives the simulation until all
// work completes. The context it passes carries the simulation process that
// every cluster operation charges its latency to.
func (c *SimCluster) Run(body func(ctx context.Context) error) error {
	var bodyErr error
	c.env.Go("main", func(p *des.Proc) {
		bodyErr = body(des.NewContext(context.Background(), p))
	})
	if err := c.env.Run(); err != nil {
		return err
	}
	return bodyErr
}

// Go spawns an additional concurrent simulated process (background pumps,
// competing tenants). Call before or inside Run.
func (c *SimCluster) Go(name string, body func(ctx context.Context)) {
	c.env.Go(name, func(p *des.Proc) {
		body(des.NewContext(context.Background(), p))
	})
}

// Elapsed reports the current simulated time.
func (c *SimCluster) Elapsed() time.Duration { return c.env.Now() }

// NewSwapManager builds a swapping system for a fresh virtual server named
// name on node 0, with its own simulated swap disk.
func (c *SimCluster) NewSwapManager(name string, cfg SwapConfig) (*SwapManager, error) {
	deps, err := c.SwapDepsFor(name)
	if err != nil {
		return nil, err
	}
	if cfg.NodeRatio < 0 && !cfg.RemoteEnabled {
		deps.VS = nil
	}
	return swap.NewManager(cfg, deps)
}

// SwapDepsFor registers a virtual server on node 0 and returns the device
// wiring for a custom SwapManager.
func (c *SimCluster) SwapDepsFor(name string) (SwapDeps, error) {
	vs, err := c.nodes[0].AddServer(name, 0)
	if err != nil {
		return SwapDeps{}, err
	}
	return swap.Deps{
		VS:     vs,
		DRAM:   c.dram,
		Shared: c.shm,
		Disk:   memdev.NewDisk(c.env, name+".swap", c.params),
	}, nil
}

// NewKVServer builds a key-value server over a fresh swap manager. window
// is the throughput time-series bucket width (0 defaults to 100 ms).
func (c *SimCluster) NewKVServer(name string, prof WorkloadProfile, cfg SwapConfig, pages int, window time.Duration) (*KVServer, error) {
	mgr, err := c.NewSwapManager(name, cfg)
	if err != nil {
		return nil, err
	}
	if window <= 0 {
		window = 100 * time.Millisecond
	}
	return kv.NewServer(prof, mgr, pages, window)
}

// NewRDDExecutor builds a Spark-style executor. With DAHI enabled the
// executor parks overflow partitions in disaggregated memory; otherwise it
// behaves like vanilla Spark (recompute on overflow).
func (c *SimCluster) NewRDDExecutor(name string, memPages int, dahi bool) (*RDDExecutor, error) {
	cfg := rdd.ExecutorConfig{
		Name:     name,
		Mode:     rdd.ModeVanilla,
		MemPages: memPages,
		DRAM:     c.dram,
		Disk:     memdev.NewDisk(c.env, name+".hdfs", c.params),
	}
	if dahi {
		vs, err := c.nodes[0].AddServer(name, 0)
		if err != nil {
			return nil, err
		}
		cfg.Mode = rdd.ModeDAHI
		cfg.VS = vs
		cfg.SHM = c.shm
	}
	return rdd.NewExecutor(cfg)
}

// NewRDDEngine wraps an executor for building datasets.
func NewRDDEngine(exec *RDDExecutor) *RDDEngine { return rdd.NewEngine(exec) }

// ListenNode starts a real disaggregated memory node serving the verbs
// protocol on addr over TCP (use cmd/dmnode for the packaged daemon). peers
// maps the other nodes' IDs to their addresses; opts tune the transport
// (e.g. tcpnet.WithCallConcurrency, tcpnet.WithConnsPerPeer).
func ListenNode(cfg NodeConfig, addr string, peers map[NodeID]string, opts ...tcpnet.Option) (*Node, *tcpnet.Endpoint, error) {
	ep, err := tcpnet.Listen(cfg.ID, addr, opts...)
	if err != nil {
		return nil, nil, err
	}
	for id, peerAddr := range peers {
		ep.AddPeer(id, peerAddr)
	}
	dir, err := cluster.NewDirectory(cluster.Config{GroupSize: len(peers) + 1, HeartbeatTimeout: 3})
	if err != nil {
		_ = ep.Close()
		return nil, nil, err
	}
	for id := range peers {
		dir.Join(cluster.NodeID(id), 0)
	}
	node, err := core.NewNode(cfg, ep, dir)
	if err != nil {
		_ = ep.Close()
		return nil, nil, err
	}
	return node, ep, nil
}

// DialClient attaches a lightweight client to a TCP cluster for direct use
// of peers' receive pools. opts tune the transport, as in ListenNode.
func DialClient(id NodeID, addr string, peers map[NodeID]string, opts ...tcpnet.Option) (*Client, *tcpnet.Endpoint, error) {
	ep, err := tcpnet.Listen(id, addr, opts...)
	if err != nil {
		return nil, nil, err
	}
	for peerID, peerAddr := range peers {
		ep.AddPeer(peerID, peerAddr)
	}
	return core.NewClient(ep), ep, nil
}

// SleepSim suspends the calling simulated process for d of simulated time.
// It panics if ctx was not produced by SimCluster.Run or SimCluster.Go.
func SleepSim(ctx context.Context, d time.Duration) {
	p, ok := des.FromContext(ctx)
	if !ok {
		panic("godm: context does not carry a simulation process")
	}
	p.Sleep(d)
}

// RunExperiment executes the named table/figure reproduction and returns its
// rendered result.
func RunExperiment(id string, scale Scale) (string, error) {
	e, err := exp.ByID(id)
	if err != nil {
		return "", err
	}
	res, err := e.Run(scale)
	if err != nil {
		return "", fmt.Errorf("godm: experiment %s: %w", id, err)
	}
	return res.String(), nil
}
